"""Loss functions: cross-entropy and the BranchyNet joint loss.

The paper trains all exits simultaneously with a weighted sum of per-exit
cross-entropy losses, J = sum_n w_n * L(y_hat_exit_n, y) — first exit
weighted 1.0 and remaining exits 0.3 in the paper's methodology.
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, one_hot, softmax

__all__ = ["cross_entropy", "CrossEntropyLoss", "JointLoss"]


def cross_entropy(logits: np.ndarray, labels: np.ndarray):
    """Mean cross-entropy and its gradient w.r.t. the logits.

    Returns ``(loss, grad)`` with ``grad`` already averaged over the batch.
    """
    n, k = logits.shape
    targets = one_hot(labels, k, dtype=logits.dtype)
    logp = log_softmax(logits, axis=1)
    loss = -(targets * logp).sum() / n
    grad = (softmax(logits, axis=1) - targets) / n
    return float(loss), grad


class CrossEntropyLoss:
    """Stateless object wrapper around :func:`cross_entropy`."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray):
        return cross_entropy(logits, labels)


class JointLoss:
    """BranchyNet joint loss over all exits.

    Parameters
    ----------
    exit_weights:
        One weight per exit in forward order (early exits first, final exit
        last). The paper uses 1.0 for the first exit and 0.3 for the rest.
    """

    def __init__(self, exit_weights: list[float]):
        if not exit_weights:
            raise ValueError("need at least one exit weight")
        if any(w < 0 for w in exit_weights):
            raise ValueError("exit weights must be non-negative")
        self.exit_weights = list(exit_weights)

    @classmethod
    def paper_default(cls, num_exits: int) -> "JointLoss":
        """Paper schedule: first exit 1.0, every later exit 0.3."""
        if num_exits < 1:
            raise ValueError("num_exits must be >= 1")
        return cls([1.0] + [0.3] * (num_exits - 1))

    def __call__(self, exit_logits: list[np.ndarray], labels: np.ndarray):
        """Joint loss and one gradient array per exit.

        Returns ``(total_loss, grads, per_exit_losses)``.
        """
        if len(exit_logits) != len(self.exit_weights):
            raise ValueError(
                f"got {len(exit_logits)} exits but {len(self.exit_weights)} weights"
            )
        total = 0.0
        grads = []
        per_exit = []
        for w, logits in zip(self.exit_weights, exit_logits):
            loss, grad = cross_entropy(logits, labels)
            total += w * loss
            grads.append(w * grad)
            per_exit.append(loss)
        return total, grads, per_exit
