"""CNV — FINN's VGG-like reference CNN, with optional early exits.

The paper's case study is CNV quantized to 2-bit weights/activations
(CNVW2A2): six 3x3 CONV layers in three blocks of two (64-64, 128-128,
256-256 channels), 2x2 max-pool after the first two blocks, and three FC
layers (512-512-classes). Convolutions are unpadded, so a 3x32x32 input
shrinks 32->30->28->14->12->10->5->3->1 through the pipeline.

Full-width CNV is not trainable in pure NumPy within this environment, so
the builder takes a ``width_scale`` that shrinks every channel count while
preserving the topology (widths stay multiples of 4 so FINN-style folding
factors exist). All paper experiments run with a scaled CNV; the scale is
recorded in the Library so results remain self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.graph import BranchedModel, Sequential
from ..nn.layers import BatchNorm, Flatten, MaxPool2d, QuantConv2D, QuantLinear, QuantReLU
from ..nn.quant import QuantSpec
from .exits import ExitsConfiguration, build_exit_branch

__all__ = ["CNVConfig", "build_cnv", "scaled_width"]

_FULL_CONV_WIDTHS = (64, 64, 128, 128, 256, 256)
_FULL_FC_WIDTHS = (512, 512)


def scaled_width(width: int, scale: float, multiple: int = 4,
                 minimum: int = 4) -> int:
    """Scale a channel count, keeping it a positive multiple of ``multiple``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    scaled = int(round(width * scale / multiple)) * multiple
    return max(scaled, minimum)


@dataclass(frozen=True)
class CNVConfig:
    """Topology and quantization parameters of a CNV instance."""

    num_classes: int = 10
    in_channels: int = 3
    image_size: int = 32
    width_scale: float = 1.0
    quant: QuantSpec = field(default_factory=QuantSpec)
    seed: int = 0

    @property
    def conv_widths(self) -> tuple:
        return tuple(scaled_width(w, self.width_scale) for w in _FULL_CONV_WIDTHS)

    @property
    def fc_widths(self) -> tuple:
        return tuple(scaled_width(w, self.width_scale) for w in _FULL_FC_WIDTHS)

    @property
    def name(self) -> str:
        tag = self.quant.name
        if self.width_scale != 1.0:
            return f"CNV{tag}-x{self.width_scale:g}"
        return f"CNV{tag}"


def _conv_block(in_ch: int, widths: tuple, quant: QuantSpec, pool: bool,
                rng: np.random.Generator, prefix: str) -> Sequential:
    seg = Sequential(name=prefix)
    ch = in_ch
    for i, out_ch in enumerate(widths):
        seg.append(QuantConv2D(ch, out_ch, kernel_size=3, padding=0,
                               quant=quant, name=f"{prefix}_conv{i}", rng=rng))
        seg.append(BatchNorm(out_ch, name=f"{prefix}_bn{i}"))
        seg.append(QuantReLU(quant, name=f"{prefix}_act{i}"))
        ch = out_ch
    if pool:
        seg.append(MaxPool2d(2, name=f"{prefix}_pool"))
    return seg


def build_cnv(config: CNVConfig | None = None,
              exits_config: ExitsConfiguration | None = None) -> BranchedModel:
    """Build CNV as a :class:`BranchedModel`, optionally with early exits.

    ``exits_config`` defaults to no exits (the plain FINN baseline
    topology). The paper's configuration is
    ``ExitsConfiguration.paper_default()``: one exit after each of the
    first two CONV blocks.
    """
    config = config or CNVConfig()
    exits_config = exits_config or ExitsConfiguration.none()
    rng = np.random.default_rng(config.seed)
    cw = config.conv_widths
    fw = config.fc_widths
    quant = config.quant

    seg0 = _conv_block(config.in_channels, cw[0:2], quant, pool=True,
                       rng=rng, prefix="b0")
    seg1 = _conv_block(cw[1], cw[2:4], quant, pool=True, rng=rng, prefix="b1")
    seg2 = _conv_block(cw[3], cw[4:6], quant, pool=False, rng=rng, prefix="b2")

    # Classifier appended to the last segment.
    input_shape = (config.in_channels, config.image_size, config.image_size)
    spatial = Sequential(seg0.layers + seg1.layers + seg2.layers)
    c, h, w = spatial.output_shape(input_shape)
    flat = c * h * w
    seg2.append(Flatten(name="flatten"))
    seg2.append(QuantLinear(flat, fw[0], quant=quant, name="fc0", rng=rng))
    seg2.append(BatchNorm(fw[0], name="fc_bn0"))
    seg2.append(QuantReLU(quant, name="fc_act0"))
    seg2.append(QuantLinear(fw[0], fw[1], quant=quant, name="fc1", rng=rng))
    seg2.append(BatchNorm(fw[1], name="fc_bn1"))
    seg2.append(QuantReLU(quant, name="fc_act1"))
    seg2.append(QuantLinear(fw[1], config.num_classes, quant=quant,
                            name="fc2", rng=rng))

    segments = [seg0, seg1, seg2]
    max_exit_block = len(segments) - 2  # exits allowed after blocks 0 and 1
    exits = {}
    shape = input_shape
    shapes = []
    for seg in segments:
        shape = seg.output_shape(shape)
        shapes.append(shape)
    for spec in exits_config.exits:
        if spec.after_block > max_exit_block:
            raise ValueError(
                f"exit after block {spec.after_block} not supported for CNV "
                f"(must be <= {max_exit_block})"
            )
        exits[spec.after_block] = build_exit_branch(
            shapes[spec.after_block], spec, config.num_classes, fw[0],
            quant, rng, name=f"exit{spec.after_block}",
        )

    model = BranchedModel(segments, exits, input_shape=input_shape,
                          name=config.name)
    # Record configuration on the model for downstream tooling.
    model.config = config
    model.exits_config = exits_config
    return model
