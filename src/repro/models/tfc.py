"""TFC — FINN's fully-connected reference network, with optional exits.

FINN ships two example topologies: CNV (the paper's case study) and the
TFC family of MNIST MLPs (784 -> W -> W -> W -> 10, quantized). TFC
rounds out the model zoo and exercises the FC-only path of the flow:
MatMul-only dataflow graphs, no sliding-window units, and — since the
paper's pruning removes CONV *filters* — a model the pruner must treat
as a no-op.

Early exits attach after the first or second hidden layer as a direct
quantized classifier head (there is no spatial map to pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.graph import BranchedModel, Sequential
from ..nn.layers import BatchNorm, Flatten, QuantLinear, QuantReLU
from ..nn.quant import QuantSpec
from .exits import ExitsConfiguration

__all__ = ["TFCConfig", "build_tfc"]


@dataclass(frozen=True)
class TFCConfig:
    """Topology parameters of a TFC instance."""

    num_classes: int = 10
    in_channels: int = 1
    image_size: int = 28
    hidden_width: int = 64
    quant: QuantSpec = field(default_factory=QuantSpec)
    seed: int = 0

    @property
    def in_features(self) -> int:
        return self.in_channels * self.image_size ** 2

    @property
    def name(self) -> str:
        return f"TFC{self.quant.name}-h{self.hidden_width}"


def _fc_block(in_f: int, out_f: int, quant: QuantSpec,
              rng: np.random.Generator, prefix: str) -> list:
    return [
        QuantLinear(in_f, out_f, quant=quant, name=f"{prefix}_fc", rng=rng),
        BatchNorm(out_f, name=f"{prefix}_bn"),
        QuantReLU(quant, name=f"{prefix}_act"),
    ]


def build_tfc(config: TFCConfig | None = None,
              exits_config: ExitsConfiguration | None = None) -> BranchedModel:
    """Build TFC as a :class:`BranchedModel` (exits after blocks 0/1)."""
    config = config or TFCConfig()
    exits_config = exits_config or ExitsConfiguration.none()
    rng = np.random.default_rng(config.seed)
    w = config.hidden_width
    quant = config.quant

    seg0 = Sequential(
        [Flatten(name="flatten")]
        + _fc_block(config.in_features, w, quant, rng, "h0"),
        name="seg0",
    )
    seg1 = Sequential(_fc_block(w, w, quant, rng, "h1"), name="seg1")
    seg2 = Sequential(
        _fc_block(w, w, quant, rng, "h2")
        + [QuantLinear(w, config.num_classes, quant=quant, name="out",
                       rng=rng)],
        name="seg2",
    )

    exits = {}
    for spec in exits_config.exits:
        if spec.after_block > 1:
            raise ValueError(
                f"TFC supports exits after blocks 0 and 1, got "
                f"{spec.after_block}"
            )
        exits[spec.after_block] = Sequential(
            [QuantLinear(w, config.num_classes, quant=quant,
                         name=f"exit{spec.after_block}_fc", rng=rng)],
            name=f"exit{spec.after_block}",
        )

    input_shape = (config.in_channels, config.image_size, config.image_size)
    model = BranchedModel([seg0, seg1, seg2], exits,
                          input_shape=input_shape, name=config.name)
    model.config = config
    model.exits_config = exits_config
    return model
