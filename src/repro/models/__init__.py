"""Model zoo: CNV (FINN's VGG-like reference CNN) and early-exit tooling."""

from .cnv import CNVConfig, build_cnv, scaled_width
from .tfc import TFCConfig, build_tfc
from .exits import ExitSpec, ExitsConfiguration, build_exit_branch

__all__ = [
    "CNVConfig", "build_cnv", "scaled_width",
    "TFCConfig", "build_tfc",
    "ExitSpec", "ExitsConfiguration", "build_exit_branch",
]
