"""Early-exit specification and branch construction.

The paper attaches exits at user-chosen backbone locations ("Exits
Configuration" in Fig. 3): each exit is a CONV layer configured like the
host block, a max-pool with kernel ``k = floor(DIM / 2)`` (DIM being the
block's output feature-map dimension) to shrink the map for synthesis,
and FC layers configured like the original CNV's FC stage. The ``pruned``
flag selects whether the exit CONV layers participate in pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.graph import Sequential
from ..nn.layers import BatchNorm, Flatten, MaxPool2d, QuantConv2D, QuantLinear, QuantReLU
from ..nn.quant import QuantSpec

__all__ = ["ExitSpec", "ExitsConfiguration", "build_exit_branch"]


@dataclass(frozen=True)
class ExitSpec:
    """One early exit.

    Parameters
    ----------
    after_block:
        0-based index of the backbone block whose output feeds this exit.
    conv_channels:
        Channels of the exit's CONV layer; ``None`` copies the host block's
        channel count (the paper's configuration).
    fc_width:
        Width of the exit's hidden FC layer; ``None`` copies the backbone
        FC width.
    pruned:
        Whether the exit's CONV layer is pruned together with the backbone
        ("Pruned Exits") or left untouched ("Not Pruned Exits").
    """

    after_block: int
    conv_channels: int | None = None
    fc_width: int | None = None
    pruned: bool = True

    def __post_init__(self):
        if self.after_block < 0:
            raise ValueError("after_block must be >= 0")


@dataclass(frozen=True)
class ExitsConfiguration:
    """The full user-facing exits configuration file."""

    exits: tuple = field(default_factory=tuple)

    def __post_init__(self):
        blocks = [e.after_block for e in self.exits]
        if len(set(blocks)) != len(blocks):
            raise ValueError("at most one exit per backbone block")
        object.__setattr__(self, "exits", tuple(
            sorted(self.exits, key=lambda e: e.after_block)))

    @classmethod
    def paper_default(cls, pruned: bool = True) -> "ExitsConfiguration":
        """The paper's CNV case study: exits after blocks 1 and 2
        (i.e., after the second and fourth CONV layers)."""
        return cls((ExitSpec(after_block=0, pruned=pruned),
                    ExitSpec(after_block=1, pruned=pruned)))

    @classmethod
    def none(cls) -> "ExitsConfiguration":
        """No early exits (plain backbone, the FINN baseline)."""
        return cls(())

    @property
    def num_early_exits(self) -> int:
        return len(self.exits)

    def with_pruned(self, pruned: bool) -> "ExitsConfiguration":
        """Copy of this configuration with every exit's ``pruned`` flag set."""
        return ExitsConfiguration(tuple(
            ExitSpec(e.after_block, e.conv_channels, e.fc_width, pruned)
            for e in self.exits))


def build_exit_branch(
    input_shape: tuple,
    spec: ExitSpec,
    num_classes: int,
    fc_width: int,
    quant: QuantSpec,
    rng: np.random.Generator,
    name: str = "exit",
) -> Sequential:
    """Construct one exit branch per the paper's recipe.

    ``input_shape`` is the (C, H, W) of the host block's output map. The
    branch is CONV (3x3, host-block channels) -> BN -> quantized ReLU ->
    max-pool k=floor(DIM/2) -> flatten -> FC -> BN -> quantized ReLU ->
    FC(num_classes).
    """
    in_ch, dim, _ = input_shape
    conv_ch = spec.conv_channels or in_ch
    branch = Sequential(name=name)
    branch.append(QuantConv2D(in_ch, conv_ch, kernel_size=3, padding=1,
                              quant=quant, name=f"{name}_conv", rng=rng))
    branch.append(BatchNorm(conv_ch, name=f"{name}_bn0"))
    branch.append(QuantReLU(quant, name=f"{name}_act0"))
    pool_k = max(dim // 2, 1)
    branch.append(MaxPool2d(pool_k, name=f"{name}_pool"))
    pooled = dim // pool_k
    flat = conv_ch * pooled * pooled
    hidden = spec.fc_width or fc_width
    branch.append(Flatten(name=f"{name}_flatten"))
    branch.append(QuantLinear(flat, hidden, quant=quant,
                              name=f"{name}_fc0", rng=rng))
    branch.append(BatchNorm(hidden, name=f"{name}_bn1"))
    branch.append(QuantReLU(quant, name=f"{name}_act1"))
    branch.append(QuantLinear(hidden, num_classes, quant=quant,
                              name=f"{name}_fc1", rng=rng))
    return branch
