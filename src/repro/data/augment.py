"""Standard data augmentation (the paper trains with "standard data
augmentation": random shifts and horizontal flips, plus light noise).

Augmentations are pure functions ``(batch, rng) -> batch`` so they plug
directly into :meth:`repro.nn.Trainer.fit`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_shift", "random_flip", "gaussian_noise", "compose",
           "standard_augmentation"]


def random_shift(max_shift: int = 2):
    """Random per-sample spatial translation with zero padding."""
    if max_shift < 0:
        raise ValueError("max_shift must be >= 0")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if max_shift == 0:
            return batch
        out = np.zeros_like(batch)
        n, _, h, w = batch.shape
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
        for i in range(n):
            dy, dx = int(shifts[i, 0]), int(shifts[i, 1])
            src_y = slice(max(0, -dy), min(h, h - dy))
            dst_y = slice(max(0, dy), min(h, h + dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = batch[i, :, src_y, src_x]
        return out

    return apply


def random_flip(p: float = 0.5):
    """Random horizontal flip with probability ``p`` per sample."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(batch.shape[0]) < p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out

    return apply


def gaussian_noise(std: float = 0.02):
    """Additive Gaussian pixel noise."""
    if std < 0:
        raise ValueError("std must be >= 0")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if std == 0:
            return batch
        return batch + rng.normal(scale=std, size=batch.shape).astype(batch.dtype)

    return apply


def compose(*augmentations):
    """Apply augmentations left to right."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for aug in augmentations:
            batch = aug(batch, rng)
        return batch

    return apply


def standard_augmentation():
    """The default train-time pipeline used across the reproduction."""
    return compose(random_shift(2), random_flip(0.5), gaussian_noise(0.02))
