"""Mini-batch iteration and split utilities."""

from __future__ import annotations

import numpy as np

from .synthetic import Dataset

__all__ = ["BatchLoader", "stratified_split"]


class BatchLoader:
    """Iterate a :class:`Dataset` in (optionally shuffled) mini-batches."""

    def __init__(self, dataset: Dataset, batch_size: int = 64,
                 shuffle: bool = False, seed: int = 0, drop_last: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]


def stratified_split(dataset: Dataset, fraction: float, seed: int = 0):
    """Split into two datasets keeping per-class proportions.

    Returns ``(first, second)`` where ``first`` holds ~``fraction`` of each
    class.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    first_idx = []
    second_idx = []
    for cls in np.unique(dataset.labels):
        members = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(members)
        cut = int(round(len(members) * fraction))
        first_idx.extend(members[:cut])
        second_idx.extend(members[cut:])
    return dataset.subset(np.array(first_idx, dtype=np.int64)), \
        dataset.subset(np.array(second_idx, dtype=np.int64))
