"""Synthetic dataset substrate (CIFAR-10 / GTSRB substitutes)."""

from .augment import (
    compose,
    gaussian_noise,
    random_flip,
    random_shift,
    standard_augmentation,
)
from .loader import BatchLoader, stratified_split
from .synthetic import (
    Dataset,
    DatasetSpec,
    SyntheticImageGenerator,
    cifar10_like,
    gtsrb_like,
    make_dataset,
    mnist_like,
)

__all__ = [
    "compose", "gaussian_noise", "random_flip", "random_shift",
    "standard_augmentation",
    "BatchLoader", "stratified_split",
    "Dataset", "DatasetSpec", "SyntheticImageGenerator",
    "cifar10_like", "gtsrb_like", "make_dataset", "mnist_like",
]
