"""Procedural image-classification datasets (CIFAR-10 / GTSRB substitutes).

The real datasets are unavailable offline, but none of the paper's claims
depend on their pixel statistics — they depend on two structural
properties that this generator reproduces explicitly:

1. a spectrum of *easy* and *hard* inputs, so that a shallow early exit can
   confidently classify part of the test set (the property BranchyNet-style
   early exit exploits), and
2. class structure at two spatial scales: a coarse, low-frequency
   *prototype* visible to shallow layers, and a fine, high-frequency
   *signature* that only deeper layers can integrate. Hard samples blend
   their coarse appearance toward a distractor class while keeping the
   fine signature correct, so depth genuinely buys accuracy.

``cifar10_like`` produces 10 classes and ``gtsrb_like`` 43 classes at the
paper's 3x32x32 resolution (GTSRB images are rescaled to CIFAR resolution
in the paper as well).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DatasetSpec", "Dataset", "SyntheticImageGenerator",
           "cifar10_like", "gtsrb_like", "mnist_like", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of a synthetic dataset family."""

    name: str
    num_classes: int
    image_shape: tuple = (3, 32, 32)
    noise_std: float = 0.25
    hard_fraction: float = 0.45
    distractor_blend: float = 0.55
    fine_amplitude: float = 0.6
    seed: int = 1234

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if len(self.image_shape) != 3:
            raise ValueError("image_shape must be (C, H, W)")
        if not 0.0 <= self.hard_fraction <= 1.0:
            raise ValueError("hard_fraction must be in [0, 1]")
        if not 0.0 <= self.distractor_blend < 1.0:
            raise ValueError("distractor_blend must be in [0, 1)")


@dataclass
class Dataset:
    """A realized split: images in NCHW float32, integer labels, difficulty."""

    images: np.ndarray
    labels: np.ndarray
    difficulty: np.ndarray  # per-sample in [0, 1]; 0 = easiest
    spec: DatasetSpec = field(repr=False, default=None)

    def __post_init__(self):
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must align")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes if self.spec else int(self.labels.max()) + 1

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.images[indices], self.labels[indices],
                       self.difficulty[indices], self.spec)


def _smooth_noise(rng: np.random.Generator, shape: tuple, coarse: int) -> np.ndarray:
    """Low-frequency random field: coarse noise upsampled to full size."""
    c, h, w = shape
    small = rng.normal(size=(c, coarse, coarse))
    reps_h = int(np.ceil(h / coarse))
    reps_w = int(np.ceil(w / coarse))
    up = np.repeat(np.repeat(small, reps_h, axis=1), reps_w, axis=2)[:, :h, :w]
    # Light box blur to remove the blocky edges.
    blurred = up.copy()
    blurred[:, 1:, :] += up[:, :-1, :]
    blurred[:, :-1, :] += up[:, 1:, :]
    blurred[:, :, 1:] += up[:, :, :-1]
    blurred[:, :, :-1] += up[:, :, 1:]
    return blurred / 5.0


class SyntheticImageGenerator:
    """Draws class prototypes once, then samples arbitrarily many images."""

    def __init__(self, spec: DatasetSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        shape = spec.image_shape
        self.coarse_prototypes = np.stack(
            [_smooth_noise(rng, shape, coarse=4) for _ in range(spec.num_classes)]
        )
        self.fine_signatures = np.stack(
            [rng.normal(size=shape) * spec.fine_amplitude
             for _ in range(spec.num_classes)]
        )
        # Normalize prototypes to unit RMS so difficulty is comparable
        for bank in (self.coarse_prototypes, self.fine_signatures):
            rms = np.sqrt((bank ** 2).mean(axis=(1, 2, 3), keepdims=True))
            bank /= np.maximum(rms, 1e-8)
        self.fine_signatures *= spec.fine_amplitude

    def sample(self, n: int, seed: int) -> Dataset:
        """Generate ``n`` labelled images with a fresh RNG stream."""
        spec = self.spec
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, spec.num_classes, size=n)
        difficulty = rng.uniform(0.0, 1.0, size=n)
        hard = difficulty < spec.hard_fraction
        # Remap so difficulty==0 is easiest: easy samples sit in (hard_fraction, 1]
        # before remap; normalize to a clean [0, 1] easiness-to-hardness scale.
        difficulty = np.where(
            hard,
            0.5 + 0.5 * (spec.hard_fraction - difficulty) / max(spec.hard_fraction, 1e-9),
            0.5 * (1.0 - (difficulty - spec.hard_fraction)
                   / max(1.0 - spec.hard_fraction, 1e-9)),
        )

        distractors = (labels + rng.integers(1, spec.num_classes, size=n)) \
            % spec.num_classes
        images = np.empty((n,) + spec.image_shape, dtype=np.float64)
        for i in range(n):
            y = labels[i]
            coarse = self.coarse_prototypes[y]
            if hard[i]:
                blend = spec.distractor_blend
                coarse = (1 - blend) * coarse \
                    + blend * self.coarse_prototypes[distractors[i]]
            noise_scale = spec.noise_std * (0.5 + difficulty[i])
            images[i] = (
                coarse
                + self.fine_signatures[y]
                + rng.normal(scale=noise_scale, size=spec.image_shape)
            )
        images = np.clip(images, -3.0, 3.0).astype(np.float32)
        return Dataset(images, labels.astype(np.int64), difficulty, spec)

    def splits(self, train: int, test: int, seed: int = 0):
        """Disjoint train/test splits from independent RNG streams."""
        return self.sample(train, seed=seed * 2 + 11), \
            self.sample(test, seed=seed * 2 + 12)


def cifar10_like(noise_std: float = 0.25, seed: int = 1234) -> DatasetSpec:
    """10-class dataset standing in for CIFAR-10 (3x32x32)."""
    return DatasetSpec(name="cifar10-like", num_classes=10,
                       noise_std=noise_std, seed=seed)


def mnist_like(noise_std: float = 0.20, seed: int = 777) -> DatasetSpec:
    """10-class single-channel dataset standing in for MNIST (1x28x28),
    used by the TFC model family."""
    return DatasetSpec(name="mnist-like", num_classes=10,
                       image_shape=(1, 28, 28), noise_std=noise_std,
                       hard_fraction=0.35, seed=seed)


def gtsrb_like(noise_std: float = 0.32, seed: int = 4321) -> DatasetSpec:
    """43-class dataset standing in for GTSRB at CIFAR resolution.

    More classes plus slightly higher noise reproduce the paper's lower
    absolute accuracy on GTSRB (~70 % vs ~89 % on CIFAR-10 for the
    unpruned CNV-W2A2).
    """
    return DatasetSpec(name="gtsrb-like", num_classes=43,
                       noise_std=noise_std, hard_fraction=0.5, seed=seed)


def make_dataset(name: str, train: int, test: int, seed: int = 0):
    """Convenience factory: ``(train_split, test_split)`` by dataset name."""
    specs = {"cifar10": cifar10_like(), "gtsrb": gtsrb_like(),
             "mnist": mnist_like()}
    key = name.lower().replace("-like", "").replace("_like", "")
    if key not in specs:
        raise ValueError(f"unknown dataset {name!r}; options: {sorted(specs)}")
    return SyntheticImageGenerator(specs[key]).splits(train, test, seed=seed)
