"""The AdaPEx Runtime Manager.

Selection policy from the paper (Sec. IV-B): given the user's accuracy
threshold (a maximum accuracy loss relative to the best model in the
Library) and the sampled incoming workload (IPS), keep only entries whose
accuracy is above the bound *and* whose throughput covers the workload,
then pick the one with the highest accuracy. Changing the confidence
threshold is free; changing the pruning rate means reconfiguring the FPGA.

Two practical refinements the paper implies:

* when no entry can carry the workload, the manager degrades gracefully
  to the fastest entry above the accuracy bound (the alternative is
  uncontrolled frame loss);
* ties on accuracy prefer (1) the currently loaded accelerator (avoids a
  145 ms reconfiguration) and (2) lower energy per inference.
"""

from __future__ import annotations

import logging
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from .library import AcceleratorId, Library, LibraryEntry

__all__ = ["SelectionPolicy", "RuntimeManager"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class SelectionPolicy:
    """Tunable knobs of the selection."""

    accuracy_loss_threshold: float = 0.10  # paper default: 10 %
    headroom: float = 1.0  # required serving capacity = workload * headroom

    def __post_init__(self):
        if not 0.0 <= self.accuracy_loss_threshold <= 1.0:
            raise ValueError("accuracy_loss_threshold must be in [0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")


class _SelectionIndex:
    """Precomputed search structure behind :meth:`RuntimeManager.select`.

    ``select`` runs every decision tick of every simulated run, and a
    linear rescan of ``Library.feasible`` per tick dominated selection
    cost. This index makes a query a ``searchsorted`` plus a scan of
    one accuracy-tie group:

    * accuracy-qualified entries sorted by ``serving_ips`` (stable, so
      library order is preserved within equal throughput) — feasibility
      for a required rate is the suffix starting at the binary-search
      position;
    * the suffix maximum of rounded accuracy — the winning accuracy
      level of any suffix in O(1);
    * slots grouped by rounded accuracy — only the (typically tiny)
      group at the winning level is scanned for the stability/energy
      tie-break, reproducing ``max(candidates, key=...)`` exactly,
      including its first-maximal-in-library-order behaviour;
    * precomputed tie lists for both degraded-mode pools (accuracy-ok
      and whole-library).

    Instances are immutable snapshots; :meth:`RuntimeManager._index`
    rebuilds one when ``Library._version`` moves.
    """

    def __init__(self, library: Library, min_accuracy: float):
        self.version = library._version
        self.size = len(library.entries)
        entries = library.entries
        order = sorted(
            (i for i, e in enumerate(entries)
             if e.accuracy >= min_accuracy),
            key=lambda i: entries[i].serving_ips)
        self.entries = entries
        self.order = order
        self.ips = np.array([entries[i].serving_ips for i in order],
                            dtype=np.float64)
        acc_r = [round(entries[i].accuracy, 6) for i in order]
        self.acc_r = acc_r
        suffix = [0.0] * len(acc_r)
        best = float("-inf")
        for k in range(len(acc_r) - 1, -1, -1):
            if acc_r[k] > best:
                best = acc_r[k]
            suffix[k] = best
        self.suffix_max_acc = suffix
        groups: dict[float, list[int]] = {}
        for k, a in enumerate(acc_r):
            groups.setdefault(a, []).append(k)
        self.groups = groups
        acc_ok = [e for e in entries if e.accuracy >= min_accuracy]
        self.degraded_acc_ok = self._degraded_ties(acc_ok)
        self.degraded_all = self._degraded_ties(entries)

    @staticmethod
    def _degraded_ties(pool: list) -> list:
        """Entries achieving the pool's best (serving_ips, accuracy), in
        library order — the only possible winners of degraded-mode
        selection (the stability bonus just arbitrates between them)."""
        if not pool:
            return []
        best = max((e.serving_ips, e.accuracy) for e in pool)
        return [e for e in pool
                if (e.serving_ips, e.accuracy) == best]


class RuntimeManager:
    """Selects Library entries to match the current edge conditions."""

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        if len(library) == 0:
            raise ValueError("cannot manage an empty library")
        self.library = library
        self.policy = policy or SelectionPolicy()
        self._reference_accuracy = library.best_accuracy()
        self._selection_index: _SelectionIndex | None = None
        self._no_reconfig_cache: dict[AcceleratorId, LibraryEntry | None] = {}
        # A partial library (design points quarantined by the sweep
        # supervisor) is servable — selection simply runs over the
        # entries that exist — but the gaps deserve a visible record.
        gaps = library.metadata.get("quarantined") or []
        if gaps:
            labels = ", ".join(
                f"{g.get('variant', '?')}@{g.get('rate', '?')}"
                for g in gaps)
            log.warning(
                "library is partial: %d design point(s) quarantined at "
                "generation time (%s); selecting over the %d entries "
                "that exist", len(gaps), labels, len(library))

    @property
    def min_accuracy(self) -> float:
        """Lowest acceptable accuracy (reference minus allowed loss)."""
        return self._reference_accuracy - self.policy.accuracy_loss_threshold

    def _index(self) -> _SelectionIndex:
        """The current selection index, rebuilt if the library changed
        (detected via ``Library._version``); also invalidates the
        :meth:`select_without_reconfig` memo on rebuild."""
        idx = self._selection_index
        lib = self.library
        if idx is None or idx.version != lib._version \
                or idx.size != len(lib.entries):
            idx = _SelectionIndex(lib, self.min_accuracy)
            self._selection_index = idx
            self._no_reconfig_cache.clear()
        return idx

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        """Pick the entry for the sampled workload.

        ``current`` is the currently deployed entry (used to break ties in
        favour of avoiding a reconfiguration).

        Equivalent to filtering ``Library.feasible(min_accuracy,
        required)`` and taking ``max`` by ``(rounded accuracy, stability,
        -energy)`` — with degraded-mode fallback to the fastest
        accuracy-honouring entry when nothing covers the workload — but
        answered from the precomputed throughput-sorted index in
        O(log n) plus a scan of the winning accuracy-tie group.
        """
        if workload_ips < 0:
            raise ValueError("workload must be >= 0")
        required = workload_ips * self.policy.headroom
        idx = self._index()
        pos = int(idx.ips.searchsorted(required, side="left"))
        cur_accel = current.accelerator if current is not None else None
        if pos >= len(idx.order):
            # Degraded mode: fastest entry that still honours accuracy.
            ties = idx.degraded_acc_ok or idx.degraded_all
            if cur_accel is not None:
                for e in ties:
                    if e.accelerator == cur_accel:
                        return e
            return ties[0]
        # Feasible set = sorted slots [pos:]; the winner carries the
        # suffix's best rounded accuracy, so only that tie group needs
        # the (stability, energy, library-order) tie-break.
        group = idx.groups[idx.suffix_max_acc[pos]]
        best_bonus = None
        best_plain = None
        for k in group[bisect_left(group, pos):]:
            lib_i = idx.order[k]
            e = idx.entries[lib_i]
            # max key, ties to the smallest library index — exactly the
            # first-maximal element Python's max() would return when
            # iterating candidates in library order.
            key = (-e.energy_per_inference_j, -lib_i)
            if best_plain is None or key > best_plain[0]:
                best_plain = (key, e)
            if cur_accel is not None and e.accelerator == cur_accel:
                if best_bonus is None or key > best_bonus[0]:
                    best_bonus = (key, e)
        return (best_bonus or best_plain)[1]

    def select_without_reconfig(self, current: LibraryEntry | None):
        """Best entry reachable without swapping the loaded bitstream.

        Graceful degradation after repeated reconfiguration failures:
        only the confidence threshold can still move (a free host-side
        change), so pick the highest-accuracy entry on ``current``'s
        accelerator that honours the accuracy floor — or the most
        accurate one at all if none does. Returns ``None`` when there is
        no deployed accelerator to stay on.
        """
        if current is None:
            return None
        self._index()  # refresh the memo against library changes
        accel = current.accelerator
        try:
            return self._no_reconfig_cache[accel]
        except KeyError:
            pass
        pool = [e for e in self.library if e.accelerator == accel]
        if not pool:
            result = None
        else:
            acc_ok = [e for e in pool if e.accuracy >= self.min_accuracy]
            result = max(acc_ok or pool, key=lambda e: e.accuracy)
        self._no_reconfig_cache[accel] = result
        return result

    @staticmethod
    def _stability_bonus(entry: LibraryEntry,
                         current: LibraryEntry | None) -> int:
        if current is not None and entry.accelerator == current.accelerator:
            return 1
        return 0

    def requires_reconfiguration(self, current: LibraryEntry | None,
                                 selected: LibraryEntry) -> bool:
        """True when moving to ``selected`` swaps the loaded bitstream."""
        if current is None:
            return True
        return current.accelerator != selected.accelerator

    def operating_points(self) -> list[AcceleratorId]:
        return self.library.accelerators()
