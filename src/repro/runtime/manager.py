"""The AdaPEx Runtime Manager.

Selection policy from the paper (Sec. IV-B): given the user's accuracy
threshold (a maximum accuracy loss relative to the best model in the
Library) and the sampled incoming workload (IPS), keep only entries whose
accuracy is above the bound *and* whose throughput covers the workload,
then pick the one with the highest accuracy. Changing the confidence
threshold is free; changing the pruning rate means reconfiguring the FPGA.

Two practical refinements the paper implies:

* when no entry can carry the workload, the manager degrades gracefully
  to the fastest entry above the accuracy bound (the alternative is
  uncontrolled frame loss);
* ties on accuracy prefer (1) the currently loaded accelerator (avoids a
  145 ms reconfiguration) and (2) lower energy per inference.

With a partial-reconfiguration cost model installed
(:meth:`RuntimeManager.set_reconfig_model`), the binary stay-put bonus
generalizes to a graded one: accuracy ties break by the actual switch
dead time (0 for the loaded accelerator, the per-region partial cost for
the rest), then energy. For campaign-scale serving the whole decision
function can be compiled into an O(1) lookup table
(:meth:`RuntimeManager.compile_policy_table`,
:mod:`repro.runtime.policytable`) that is exactly equivalent to the
indexed path and auto-recompiles when the library or policy mutates.
"""

from __future__ import annotations

import logging
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from .library import AcceleratorId, Library, LibraryEntry

__all__ = ["SelectionPolicy", "RuntimeManager"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class SelectionPolicy:
    """Tunable knobs of the selection."""

    accuracy_loss_threshold: float = 0.10  # paper default: 10 %
    headroom: float = 1.0  # required serving capacity = workload * headroom

    def __post_init__(self):
        if not 0.0 <= self.accuracy_loss_threshold <= 1.0:
            raise ValueError("accuracy_loss_threshold must be in [0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")


class _SelectionIndex:
    """Precomputed search structure behind :meth:`RuntimeManager.select`.

    ``select`` runs every decision tick of every simulated run, and a
    linear rescan of ``Library.feasible`` per tick dominated selection
    cost. This index makes a query a ``searchsorted`` plus a scan of
    one accuracy-tie group:

    * accuracy-qualified entries sorted by ``serving_ips`` (stable, so
      library order is preserved within equal throughput) — feasibility
      for a required rate is the suffix starting at the binary-search
      position;
    * the suffix maximum of rounded accuracy — the winning accuracy
      level of any suffix in O(1);
    * slots grouped by rounded accuracy — only the (typically tiny)
      group at the winning level is scanned for the stability/energy
      tie-break, reproducing ``max(candidates, key=...)`` exactly,
      including its first-maximal-in-library-order behaviour;
    * precomputed tie lists for both degraded-mode pools (accuracy-ok
      and whole-library).

    Instances are immutable snapshots; :meth:`RuntimeManager._index`
    rebuilds one when ``Library._version`` moves.
    """

    def __init__(self, library: Library, min_accuracy: float):
        self.version = library._version
        self.size = len(library.entries)
        self.min_accuracy = min_accuracy
        entries = library.entries
        order = sorted(
            (i for i, e in enumerate(entries)
             if e.accuracy >= min_accuracy),
            key=lambda i: entries[i].serving_ips)
        self.entries = entries
        self.order = order
        self.ips = np.array([entries[i].serving_ips for i in order],
                            dtype=np.float64)
        acc_r = [round(entries[i].accuracy, 6) for i in order]
        self.acc_r = acc_r
        suffix = [0.0] * len(acc_r)
        best = float("-inf")
        for k in range(len(acc_r) - 1, -1, -1):
            if acc_r[k] > best:
                best = acc_r[k]
            suffix[k] = best
        self.suffix_max_acc = suffix
        groups: dict[float, list[int]] = {}
        for k, a in enumerate(acc_r):
            groups.setdefault(a, []).append(k)
        self.groups = groups
        acc_ok = [e for e in entries if e.accuracy >= min_accuracy]
        self.degraded_acc_ok = self._degraded_ties(acc_ok)
        self.degraded_all = self._degraded_ties(entries)

    @staticmethod
    def _degraded_ties(pool: list) -> list:
        """Entries achieving the pool's best (serving_ips, accuracy), in
        library order — the only possible winners of degraded-mode
        selection (the stability bonus just arbitrates between them)."""
        if not pool:
            return []
        best = max((e.serving_ips, e.accuracy) for e in pool)
        return [e for e in pool
                if (e.serving_ips, e.accuracy) == best]


class RuntimeManager:
    """Selects Library entries to match the current edge conditions."""

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None,
                 reconfig_model=None):
        if len(library) == 0:
            raise ValueError("cannot manage an empty library")
        self.library = library
        self.policy = policy or SelectionPolicy()
        # Optional switch-cost model (PartialReconfigModel duck type:
        # ``switch_time_s(current, target)``). When set, accuracy ties
        # break by *graded* switch cost instead of the binary
        # same-accelerator stability bonus.
        self.reconfig_model = reconfig_model
        self._reference_accuracy = library.best_accuracy()
        self._selection_index: _SelectionIndex | None = None
        self._floor_indexes: dict[float, _SelectionIndex] = {}
        self._policy_table = None  # set by compile_policy_table()
        self._table_spec = None  # (cells, extra_levels) once compiled
        self._no_reconfig_cache: dict[AcceleratorId, LibraryEntry | None] = {}
        # A partial library (design points quarantined by the sweep
        # supervisor) is servable — selection simply runs over the
        # entries that exist — but the gaps deserve a visible record.
        gaps = library.metadata.get("quarantined") or []
        if gaps:
            labels = ", ".join(
                f"{g.get('variant', '?')}@{g.get('rate', '?')}"
                for g in gaps)
            log.warning(
                "library is partial: %d design point(s) quarantined at "
                "generation time (%s); selecting over the %d entries "
                "that exist", len(gaps), labels, len(library))

    @property
    def min_accuracy(self) -> float:
        """Lowest acceptable accuracy (reference minus allowed loss)."""
        return self._reference_accuracy - self.policy.accuracy_loss_threshold

    def _index(self) -> _SelectionIndex:
        """The current selection index, rebuilt if the library changed
        (detected via ``Library._version``) or the accuracy floor moved
        (a replaced ``policy``); also invalidates the
        :meth:`select_without_reconfig` memo on rebuild."""
        idx = self._selection_index
        lib = self.library
        if idx is None or idx.version != lib._version \
                or idx.size != len(lib.entries) \
                or idx.min_accuracy != self.min_accuracy:
            idx = _SelectionIndex(lib, self.min_accuracy)
            self._selection_index = idx
            self._no_reconfig_cache.clear()
        return idx

    def set_reconfig_model(self, model) -> None:
        """Install (or clear, with ``None``) the switch-cost model.

        Drops any compiled policy table (and its installed fast-select
        closure): the tabulated tie-breaks were computed against the
        previous cost calculus. If a table was compiled, the next
        :meth:`select` recompiles it against the new model.
        """
        self.reconfig_model = model
        self._policy_table = None
        self.__dict__.pop("select", None)

    def compile_policy_table(self, cells: int = 4096,
                             extra_accuracy_levels=()):
        """Compile selection into an O(1) lookup table.

        Quantizes the workload axis onto a ``cells``-cell grid and
        tabulates the winning entry at every (grid cell, loaded
        accelerator) point — :meth:`select` then answers with one array
        lookup instead of a searchsorted plus tie-break scan, falling
        back to the index for off-grid or grid-edge queries. The table
        auto-recompiles when the library or policy changes.
        ``extra_accuracy_levels`` precompiles additional min-accuracy
        floors (for multi-tenant queries via
        :meth:`PolicyTable.lookup_at <repro.runtime.policytable.PolicyTable.lookup_at>`).
        """
        from .policytable import PolicyTable
        table = PolicyTable(
            self, cells=cells,
            extra_accuracy_levels=tuple(extra_accuracy_levels))
        self._policy_table = table
        self._table_spec = (cells, tuple(extra_accuracy_levels))
        # Install the closure form as the per-instance ``select`` —
        # unless a subclass overrides select (e.g. OraclePolicy), where
        # shadowing the override would change its semantics.
        if type(self).select is RuntimeManager.select:
            self.select = table.install_fast_select(self)
        return table

    def ensure_policy_table(self, cells: int = 4096,
                            extra_accuracy_levels=()) -> None:
        """Idempotent table opt-in: compile once, then no-op.

        Fleet campaigns build one shared policy per SLO tier and call
        this from the parent process so every forked worker inherits the
        compiled table instead of recompiling it per process. Unlike
        :meth:`compile_policy_table` this never rebuilds an existing
        table (staleness is already handled lazily by :meth:`select`).
        """
        if self._table_spec is None:
            self.compile_policy_table(cells, extra_accuracy_levels)

    def drop_policy_table(self) -> None:
        """Opt back out of table-backed selection (index path only)."""
        self._policy_table = None
        self._table_spec = None
        self.__dict__.pop("select", None)

    def __getstate__(self):
        # The compiled table and its installed fast-select closure hold
        # id()-keyed structures that are meaningless (and unpicklable)
        # across processes. ``_table_spec`` survives, so unpickled
        # copies — e.g. parallel campaign workers — recompile lazily on
        # their first select().
        state = dict(self.__dict__)
        state.pop("select", None)
        state["_policy_table"] = None
        return state

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        """Pick the entry for the sampled workload.

        ``current`` is the currently deployed entry (used to break ties in
        favour of avoiding a reconfiguration).

        Equivalent to filtering ``Library.feasible(min_accuracy,
        required)`` and taking ``max`` by ``(rounded accuracy, stability,
        -energy)`` — with degraded-mode fallback to the fastest
        accuracy-honouring entry when nothing covers the workload — but
        answered from the precomputed throughput-sorted index in
        O(log n) plus a scan of the winning accuracy-tie group.
        """
        if workload_ips < 0:
            raise ValueError("workload must be >= 0")
        spec = self._table_spec
        if spec is not None:
            table = self._policy_table
            lib = self.library
            if table is None or table.version != lib._version \
                    or table.size != len(lib.entries) \
                    or table.policy is not self.policy:
                # Stale (library/policy mutated) or absent (unpickled
                # in a worker, or the cost model changed): recompile in
                # place — compiling was an explicit opt-in, so the
                # table stays live across mutations. This also
                # refreshes the installed fast-select closure.
                table = self.compile_policy_table(*spec)
            hit = table.lookup(workload_ips, current)
            if hit is not None:
                return hit
            # off-grid / unsafe-cell query: answer from the index
        return self._select_indexed(self._index(), workload_ips, current)

    def _select_indexed(self, idx: _SelectionIndex, workload_ips: float,
                        current: LibraryEntry | None) -> LibraryEntry:
        """The searchsorted-plus-tie-group scan behind :meth:`select`,
        parameterized over the index (and thus the accuracy floor) so
        :meth:`select_at` shares the exact decision function."""
        required = workload_ips * self.policy.headroom
        pos = int(idx.ips.searchsorted(required, side="left"))
        cur_accel = current.accelerator if current is not None else None
        model = self.reconfig_model
        if pos >= len(idx.order):
            # Degraded mode: fastest entry that still honours accuracy.
            ties = idx.degraded_acc_ok or idx.degraded_all
            if cur_accel is not None:
                if model is None:
                    for e in ties:
                        if e.accelerator == cur_accel:
                            return e
                else:
                    # Graded cost: the cheapest switch wins, ties to the
                    # earliest tie-list (= library-order) candidate.
                    best = None
                    for e in ties:
                        c = model.switch_time_s(cur_accel, e.accelerator)
                        if best is None or c < best[0]:
                            best = (c, e)
                    return best[1]
            return ties[0]
        # Feasible set = sorted slots [pos:]; the winner carries the
        # suffix's best rounded accuracy, so only that tie group needs
        # the (switch-cost, energy, library-order) tie-break.
        group = idx.groups[idx.suffix_max_acc[pos]]
        start = bisect_left(group, pos)
        if model is not None and cur_accel is not None:
            # Graded switch cost generalizes the stability bonus: a
            # same-accelerator candidate costs 0, others cost their
            # partial-reconfiguration time.
            best = None
            for k in group[start:]:
                lib_i = idx.order[k]
                e = idx.entries[lib_i]
                key = (-model.switch_time_s(cur_accel, e.accelerator),
                       -e.energy_per_inference_j, -lib_i)
                if best is None or key > best[0]:
                    best = (key, e)
            return best[1]
        best_bonus = None
        best_plain = None
        for k in group[start:]:
            lib_i = idx.order[k]
            e = idx.entries[lib_i]
            # max key, ties to the smallest library index — exactly the
            # first-maximal element Python's max() would return when
            # iterating candidates in library order.
            key = (-e.energy_per_inference_j, -lib_i)
            if best_plain is None or key > best_plain[0]:
                best_plain = (key, e)
            if cur_accel is not None and e.accelerator == cur_accel:
                if best_bonus is None or key > best_bonus[0]:
                    best_bonus = (key, e)
        return (best_bonus or best_plain)[1]

    def _index_at(self, min_accuracy: float) -> _SelectionIndex:
        """A selection index for an explicit accuracy floor, cached per
        floor and invalidated on library mutation (same discipline as
        :meth:`_index`)."""
        if min_accuracy == self.min_accuracy:
            return self._index()
        lib = self.library
        idx = self._floor_indexes.get(min_accuracy)
        if idx is None or idx.version != lib._version \
                or idx.size != len(lib.entries):
            idx = _SelectionIndex(lib, min_accuracy)
            self._floor_indexes[min_accuracy] = idx
        return idx

    def select_at(self, min_accuracy: float, workload_ips: float,
                  current: LibraryEntry | None = None) -> LibraryEntry:
        """:meth:`select` against an explicit accuracy floor.

        The brownout degradation ladder (``ServerConfig.brownout_levels``)
        steps a server's floor down under queue pressure without mutating
        the shared policy — mutation would leak one server's pressure
        into every other server of its SLO tier and break worker-count
        invariance. A floor equal to :attr:`min_accuracy` answers through
        :meth:`select` (including any installed fast-select closure);
        other floors answer from the compiled table's extra accuracy
        levels when present (:meth:`PolicyTable.lookup_at
        <repro.runtime.policytable.PolicyTable.lookup_at>`), else from a
        per-floor cached index — both exactly equivalent to rebuilding
        the manager with the shifted policy.
        """
        if workload_ips < 0:
            raise ValueError("workload must be >= 0")
        if min_accuracy == self.min_accuracy:
            return self.select(workload_ips, current)
        spec = self._table_spec
        if spec is not None:
            table = self._policy_table
            lib = self.library
            if table is None or table.version != lib._version \
                    or table.size != len(lib.entries) \
                    or table.policy is not self.policy:
                table = self.compile_policy_table(*spec)
            hit = table.lookup_at(min_accuracy, workload_ips, current)
            if hit is not None:
                return hit
        return self._select_indexed(self._index_at(min_accuracy),
                                    workload_ips, current)

    def select_without_reconfig(self, current: LibraryEntry | None):
        """Best entry reachable without swapping the loaded bitstream.

        Graceful degradation after repeated reconfiguration failures:
        only the confidence threshold can still move (a free host-side
        change), so pick the highest-accuracy entry on ``current``'s
        accelerator that honours the accuracy floor — or the most
        accurate one at all if none does. Returns ``None`` when there is
        no deployed accelerator to stay on.
        """
        if current is None:
            return None
        self._index()  # refresh the memo against library changes
        accel = current.accelerator
        try:
            return self._no_reconfig_cache[accel]
        except KeyError:
            pass
        pool = [e for e in self.library if e.accelerator == accel]
        if not pool:
            result = None
        else:
            acc_ok = [e for e in pool if e.accuracy >= self.min_accuracy]
            result = max(acc_ok or pool, key=lambda e: e.accuracy)
        self._no_reconfig_cache[accel] = result
        return result

    @staticmethod
    def _stability_bonus(entry: LibraryEntry,
                         current: LibraryEntry | None) -> int:
        if current is not None and entry.accelerator == current.accelerator:
            return 1
        return 0

    def requires_reconfiguration(self, current: LibraryEntry | None,
                                 selected: LibraryEntry) -> bool:
        """True when moving to ``selected`` swaps the loaded bitstream."""
        if current is None:
            return True
        return current.accelerator != selected.accelerator

    def operating_points(self) -> list[AcceleratorId]:
        return self.library.accelerators()
