"""The AdaPEx Runtime Manager.

Selection policy from the paper (Sec. IV-B): given the user's accuracy
threshold (a maximum accuracy loss relative to the best model in the
Library) and the sampled incoming workload (IPS), keep only entries whose
accuracy is above the bound *and* whose throughput covers the workload,
then pick the one with the highest accuracy. Changing the confidence
threshold is free; changing the pruning rate means reconfiguring the FPGA.

Two practical refinements the paper implies:

* when no entry can carry the workload, the manager degrades gracefully
  to the fastest entry above the accuracy bound (the alternative is
  uncontrolled frame loss);
* ties on accuracy prefer (1) the currently loaded accelerator (avoids a
  145 ms reconfiguration) and (2) lower energy per inference.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from .library import AcceleratorId, Library, LibraryEntry

__all__ = ["SelectionPolicy", "RuntimeManager"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class SelectionPolicy:
    """Tunable knobs of the selection."""

    accuracy_loss_threshold: float = 0.10  # paper default: 10 %
    headroom: float = 1.0  # required serving capacity = workload * headroom

    def __post_init__(self):
        if not 0.0 <= self.accuracy_loss_threshold <= 1.0:
            raise ValueError("accuracy_loss_threshold must be in [0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")


class RuntimeManager:
    """Selects Library entries to match the current edge conditions."""

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        if len(library) == 0:
            raise ValueError("cannot manage an empty library")
        self.library = library
        self.policy = policy or SelectionPolicy()
        self._reference_accuracy = library.best_accuracy()
        # A partial library (design points quarantined by the sweep
        # supervisor) is servable — selection simply runs over the
        # entries that exist — but the gaps deserve a visible record.
        gaps = library.metadata.get("quarantined") or []
        if gaps:
            labels = ", ".join(
                f"{g.get('variant', '?')}@{g.get('rate', '?')}"
                for g in gaps)
            log.warning(
                "library is partial: %d design point(s) quarantined at "
                "generation time (%s); selecting over the %d entries "
                "that exist", len(gaps), labels, len(library))

    @property
    def min_accuracy(self) -> float:
        """Lowest acceptable accuracy (reference minus allowed loss)."""
        return self._reference_accuracy - self.policy.accuracy_loss_threshold

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        """Pick the entry for the sampled workload.

        ``current`` is the currently deployed entry (used to break ties in
        favour of avoiding a reconfiguration).
        """
        if workload_ips < 0:
            raise ValueError("workload must be >= 0")
        required = workload_ips * self.policy.headroom
        candidates = self.library.feasible(self.min_accuracy, required)
        if not candidates:
            # Degraded mode: fastest entry that still honours accuracy.
            acc_ok = [e for e in self.library
                      if e.accuracy >= self.min_accuracy]
            pool = acc_ok or list(self.library)
            return max(pool, key=lambda e: (
                e.serving_ips,
                e.accuracy,
                self._stability_bonus(e, current),
            ))
        return max(candidates, key=lambda e: (
            round(e.accuracy, 6),
            self._stability_bonus(e, current),
            -e.energy_per_inference_j,
        ))

    def select_without_reconfig(self, current: LibraryEntry | None):
        """Best entry reachable without swapping the loaded bitstream.

        Graceful degradation after repeated reconfiguration failures:
        only the confidence threshold can still move (a free host-side
        change), so pick the highest-accuracy entry on ``current``'s
        accelerator that honours the accuracy floor — or the most
        accurate one at all if none does. Returns ``None`` when there is
        no deployed accelerator to stay on.
        """
        if current is None:
            return None
        pool = [e for e in self.library
                if e.accelerator == current.accelerator]
        if not pool:
            return None
        acc_ok = [e for e in pool if e.accuracy >= self.min_accuracy]
        return max(acc_ok or pool, key=lambda e: e.accuracy)

    @staticmethod
    def _stability_bonus(entry: LibraryEntry,
                         current: LibraryEntry | None) -> int:
        if current is not None and entry.accelerator == current.accelerator:
            return 1
        return 0

    def requires_reconfiguration(self, current: LibraryEntry | None,
                                 selected: LibraryEntry) -> bool:
        """True when moving to ``selected`` swaps the loaded bitstream."""
        if current is None:
            return True
        return current.accelerator != selected.accelerator

    def operating_points(self) -> list[AcceleratorId]:
        return self.library.accelerators()
