"""AdaPEx runtime: the Library, Runtime Manager, baselines, and
reconfiguration machinery."""

from .baselines import AdaPEx, CTOnly, FINNStatic, PROnly, make_policy
from .extra_policies import OraclePolicy, RandomPolicy
from .faults import FAULT_PRESETS, FaultPlan, FaultSpec
from .library import (AcceleratorId, Library, LibraryEntry, LoadReport,
                      SCHEMA_VERSION)
from .manager import RuntimeManager, SelectionPolicy
from .monitor import WorkloadMonitor
from .policytable import PolicyTable
from .reconfig import (PartialReconfigModel, ReconfigEvent,
                       ReconfigurationController)

__all__ = [
    "AdaPEx", "CTOnly", "FINNStatic", "PROnly", "make_policy",
    "OraclePolicy", "RandomPolicy",
    "FAULT_PRESETS", "FaultPlan", "FaultSpec",
    "AcceleratorId", "Library", "LibraryEntry", "LoadReport",
    "SCHEMA_VERSION",
    "RuntimeManager", "SelectionPolicy", "PolicyTable",
    "WorkloadMonitor",
    "PartialReconfigModel", "ReconfigEvent", "ReconfigurationController",
]
