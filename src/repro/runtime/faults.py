"""Deterministic fault injection for the runtime serving stack.

The paper's Runtime Manager assumes every FPGA reconfiguration (~145 ms)
and every inference completes cleanly. A production edge server does not
get that luxury: partial-reconfiguration DMA transfers fail, accelerators
return transient errors, the ingest network drops frames, and workloads
spike beyond the characterized envelope. This module models those
non-ideal conditions as an explicit, *seeded* fault plan so that chaos
campaigns are byte-reproducible and double as regression tests:

* :class:`FaultSpec` — the declarative fault model (probabilities, jitter
  magnitudes, spike shape, retry budget, active time window). Frozen and
  picklable, so it ships to the parallel simulation workers unchanged.
* :class:`FaultPlan` — one seeded realization of a spec. Every fault
  category draws from its own independent PCG64 stream, so e.g. the
  spike schedule of a run does not depend on how many drop decisions
  were sampled before it. Two plans built from the same ``(spec, seed)``
  make identical decisions forever.

The simulator asks the plan one question per event (``drop_request``,
``inference_fails``, ``reconfig_outcome``) and merges ``spike_arrivals``
into the workload before the run starts. When no spec is given the
simulator never touches a plan, keeping fault-free runs bit-identical to
the pre-fault code path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

__all__ = ["FaultSpec", "FaultPlan", "FAULT_PRESETS"]


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model for one campaign.

    Probabilities are per-event (per request, per reconfiguration
    attempt); jitter is the relative half-width of a uniform multiplier
    on the nominal reconfiguration time. Faults are only injected inside
    ``[active_from_s, active_until_s)`` (``None`` = until the end), which
    lets tests assert that the server converges back to the optimal
    operating point after faults clear.
    """

    reconfig_failure_prob: float = 0.0
    reconfig_jitter: float = 0.0
    inference_error_prob: float = 0.0
    drop_prob: float = 0.0
    spike_prob: float = 0.0
    spike_factor: float = 3.0
    spike_duration_s: float = 2.0
    reconfig_retries: int = 2
    retry_backoff_s: float = 0.05
    inference_retries: int = 1
    active_from_s: float = 0.0
    active_until_s: float | None = None

    def __post_init__(self):
        for name in ("reconfig_failure_prob", "inference_error_prob",
                     "drop_prob", "spike_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 <= self.reconfig_jitter < 1.0:
            raise ValueError("reconfig_jitter must be in [0, 1)")
        if self.spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")
        if self.spike_duration_s <= 0:
            raise ValueError("spike_duration_s must be positive")
        if self.reconfig_retries < 0 or self.inference_retries < 0:
            raise ValueError("retry counts must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.active_from_s < 0:
            raise ValueError("active_from_s must be >= 0")
        if self.active_until_s is not None \
                and self.active_until_s <= self.active_from_s:
            raise ValueError("active_until_s must exceed active_from_s")

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, n) > 0 for n in (
            "reconfig_failure_prob", "reconfig_jitter",
            "inference_error_prob", "drop_prob", "spike_prob"))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from a CLI string.

        Accepts a preset name (``light``/``heavy``/``chaos``), a
        comma-separated ``key=value`` list, or a preset followed by
        overrides: ``"heavy,drop_prob=0.1"``.
        """
        spec = cls()
        known = {f.name: f for f in fields(cls)}
        for i, token in enumerate(t.strip() for t in text.split(",")):
            if not token:
                continue
            if "=" not in token:
                if i != 0:
                    raise ValueError(
                        f"preset name {token!r} must come first")
                if token not in FAULT_PRESETS:
                    raise ValueError(
                        f"unknown fault preset {token!r}; options: "
                        f"{sorted(FAULT_PRESETS)}")
                spec = FAULT_PRESETS[token]
                continue
            key, _, raw = token.partition("=")
            key = key.strip()
            if key not in known:
                raise ValueError(
                    f"unknown fault parameter {key!r}; options: "
                    f"{sorted(known)}")
            kind = known[key].type
            if key == "active_until_s":
                value = None if raw.strip().lower() == "none" \
                    else float(raw)
            elif "int" in str(kind):
                value = int(raw)
            else:
                value = float(raw)
            spec = replace(spec, **{key: value})
        return spec

    def plan(self, seed) -> "FaultPlan":
        return FaultPlan(self, seed)


#: Named campaign intensities for the CLI (``--faults heavy``).
FAULT_PRESETS = {
    "light": FaultSpec(reconfig_failure_prob=0.05, reconfig_jitter=0.10,
                       drop_prob=0.005),
    "heavy": FaultSpec(reconfig_failure_prob=0.30, reconfig_jitter=0.25,
                       inference_error_prob=0.02, drop_prob=0.02,
                       spike_prob=0.20),
    "chaos": FaultSpec(reconfig_failure_prob=0.50, reconfig_jitter=0.50,
                       inference_error_prob=0.05, drop_prob=0.05,
                       spike_prob=0.30, spike_factor=4.0),
}


def _category_rng(seed, category: int) -> np.random.Generator:
    """Independent stream per fault category (decisions in one category
    never shift the draws of another)."""
    if isinstance(seed, (tuple, list)):
        entropy = [int(s) for s in seed] + [category]
    else:
        entropy = [int(seed), category]
    return np.random.default_rng(entropy)


class FaultPlan:
    """One seeded, deterministic realization of a :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec, seed=0):
        self.spec = spec
        self.seed = seed
        self._drop_rng = _category_rng(seed, 0)
        self._reconfig_rng = _category_rng(seed, 1)
        self._inference_rng = _category_rng(seed, 2)
        self._spike_rng = _category_rng(seed, 3)
        #: Counts of every fault actually injected, for reporting.
        self.injected = {"drops": 0, "reconfig_failures": 0,
                         "inference_errors": 0, "spike_windows": 0,
                         "spike_requests": 0}

    def active(self, now: float) -> bool:
        s = self.spec
        return now >= s.active_from_s and (
            s.active_until_s is None or now < s.active_until_s)

    # ------------------------------------------------------------------
    # per-event decisions
    # ------------------------------------------------------------------
    def drop_request(self, now: float) -> bool:
        """Ingress network loss: the request never reaches the server."""
        s = self.spec
        if s.drop_prob == 0.0 or not self.active(now):
            return False
        hit = bool(self._drop_rng.random() < s.drop_prob)
        if hit:
            self.injected["drops"] += 1
        return hit

    def inference_fails(self, now: float) -> bool:
        """Transient accelerator error on one inference."""
        s = self.spec
        if s.inference_error_prob == 0.0 or not self.active(now):
            return False
        hit = bool(self._inference_rng.random() < s.inference_error_prob)
        if hit:
            self.injected["inference_errors"] += 1
        return hit

    def reconfig_outcome(self, now: float,
                         nominal_s: float) -> tuple[bool, float]:
        """Outcome of one reconfiguration attempt.

        Returns ``(fails, duration_s)``: whether the attempt fails (time
        is still burned either way) and the jittered swap duration.
        """
        s = self.spec
        fails = False
        duration = nominal_s
        if not self.active(now):
            return fails, duration
        if s.reconfig_failure_prob > 0.0:
            fails = bool(self._reconfig_rng.random()
                         < s.reconfig_failure_prob)
            if fails:
                self.injected["reconfig_failures"] += 1
        if s.reconfig_jitter > 0.0:
            duration = nominal_s * float(self._reconfig_rng.uniform(
                1.0 - s.reconfig_jitter, 1.0 + s.reconfig_jitter))
        return fails, duration

    # ------------------------------------------------------------------
    # workload spikes
    # ------------------------------------------------------------------
    def spike_arrivals(self, duration_s: float,
                       nominal_ips: float) -> np.ndarray:
        """Extra arrival times from workload spikes over a whole run.

        The run is divided into windows of ``spike_duration_s``; each
        active window independently spikes with ``spike_prob``, adding
        Poisson arrivals at ``nominal_ips * (spike_factor - 1)`` on top
        of the base workload.
        """
        s = self.spec
        if s.spike_prob == 0.0 or s.spike_factor <= 1.0:
            return np.empty(0)
        extra_rate = nominal_ips * (s.spike_factor - 1.0)
        times = []
        t = 0.0
        while t < duration_s:
            t1 = min(t + s.spike_duration_s, duration_s)
            if self.active(t) \
                    and self._spike_rng.random() < s.spike_prob:
                count = int(self._spike_rng.poisson(
                    extra_rate * (t1 - t)))
                if count:
                    times.append(self._spike_rng.uniform(t, t1,
                                                         size=count))
                    self.injected["spike_requests"] += count
                self.injected["spike_windows"] += 1
            t = t1
        if not times:
            return np.empty(0)
        out = np.concatenate(times)
        out.sort()
        return out
