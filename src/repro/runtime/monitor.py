"""Workload monitoring.

The paper adds "performance monitors to the software in charge of the
incoming inferences" that flag workload changes. The monitor keeps a
sliding window of arrival timestamps, reports the sampled incoming IPS,
and raises a change flag when the rate moves by more than a configurable
relative threshold since the last acknowledged level.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["WorkloadMonitor"]


class WorkloadMonitor:
    """Sliding-window arrival-rate estimator with change detection."""

    def __init__(self, window_s: float = 1.0, change_threshold: float = 0.10):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if change_threshold < 0:
            raise ValueError("change_threshold must be >= 0")
        self.window_s = window_s
        self.change_threshold = change_threshold
        self._arrivals: deque = deque()
        self._acknowledged_ips: float | None = None

    def record_arrival(self, t: float) -> None:
        """Register one inference request at time ``t`` (seconds)."""
        if self._arrivals and t < self._arrivals[-1]:
            raise ValueError("arrivals must be recorded in time order")
        self._arrivals.append(t)
        self._trim(t)

    def observe_many(self, times) -> None:
        """Register a batch of arrival timestamps at once.

        Equivalent to calling :meth:`record_arrival` for each element of
        ``times`` (already sorted, not earlier than anything recorded so
        far) but validated and trimmed once per batch — the simulators
        buffer arrivals between decision ticks and flush them here,
        removing a per-frame method-call hot spot from both the event
        loop and the vectorized fast path.
        """
        batch = np.asarray(times, dtype=np.float64)
        if batch.ndim != 1:
            raise ValueError("times must be a 1-D sequence")
        if batch.size == 0:
            return
        if batch.size > 1 and bool(np.any(np.diff(batch) < 0)):
            raise ValueError("arrivals must be recorded in time order")
        first = float(batch[0])
        if self._arrivals and first < self._arrivals[-1]:
            raise ValueError("arrivals must be recorded in time order")
        self._arrivals.extend(batch.tolist())
        self._trim(float(batch[-1]))

    def _trim(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._arrivals and self._arrivals[0] <= cutoff:
            self._arrivals.popleft()

    def sampled_ips(self, now: float) -> float:
        """Arrival rate over the trailing window."""
        self._trim(now)
        return len(self._arrivals) / self.window_s

    def change_flagged(self, now: float) -> bool:
        """True when the rate drifted beyond the threshold since the last
        acknowledged sample. Acknowledge with :meth:`acknowledge`."""
        current = self.sampled_ips(now)
        if self._acknowledged_ips is None:
            return True
        base = max(self._acknowledged_ips, 1e-9)
        return abs(current - self._acknowledged_ips) / base \
            > self.change_threshold

    def acknowledge(self, now: float) -> float:
        """Mark the current level as handled; returns that level."""
        self._acknowledged_ips = self.sampled_ips(now)
        return self._acknowledged_ips

    def reset(self) -> None:
        self._arrivals.clear()
        self._acknowledged_ips = None
