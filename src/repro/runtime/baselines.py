"""Baseline runtime policies the paper evaluates AdaPEx against.

* **FINNStatic** — the original FINN accelerator: one bitstream (the
  unpruned, no-exit CNN), no runtime adaptation at all.
* **PROnly** — the runtime selection of Sec. IV-B but over single-exit
  (no early exit) pruned models: only the pruning rate adapts, each
  change costing a reconfiguration.
* **CTOnly** — a not-pruned early-exit model where only the confidence
  threshold adapts (never reconfigures).

All baselines expose the same interface as
:class:`~repro.runtime.manager.RuntimeManager` so the edge simulator can
drive any of them interchangeably.
"""

from __future__ import annotations

from .library import Library, LibraryEntry
from .manager import RuntimeManager, SelectionPolicy

__all__ = ["AdaPEx", "FINNStatic", "PROnly", "CTOnly", "make_policy"]


class FINNStatic:
    """No adaptation: always the unpruned, exit-free accelerator."""

    name = "FINN"

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        candidates = [e for e in library
                      if e.accelerator.variant == "backbone"
                      and e.accelerator.pruning_rate == 0.0]
        if not candidates:
            raise ValueError("library has no unpruned backbone entry")
        # The backbone model has a single exit; any threshold is equivalent.
        self._entry = candidates[0]

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        return self._entry

    def requires_reconfiguration(self, current, selected) -> bool:
        return current is None or current.accelerator != selected.accelerator


class PROnly(RuntimeManager):
    """Adapts pruning rate only, over no-early-exit models."""

    name = "PR-Only"

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        filtered = library.filtered(
            lambda e: e.accelerator.variant == "backbone")
        if len(filtered) == 0:
            raise ValueError("library has no backbone (no-exit) entries")
        super().__init__(filtered, policy)


class CTOnly(RuntimeManager):
    """Adapts the confidence threshold only, on the unpruned exit model."""

    name = "CT-Only"

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        filtered = library.filtered(
            lambda e: e.accelerator.variant == "ee"
            and e.accelerator.pruning_rate == 0.0)
        if len(filtered) == 0:
            raise ValueError("library has no unpruned early-exit entries")
        super().__init__(filtered, policy)


class AdaPEx(RuntimeManager):
    """The full co-optimized policy (alias with a display name)."""

    name = "AdaPEx"

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None):
        filtered = library.filtered(lambda e: e.accelerator.variant == "ee")
        if len(filtered) == 0:
            raise ValueError("library has no early-exit entries")
        super().__init__(filtered, policy)


_POLICIES = {
    "adapex": AdaPEx,
    "finn": FINNStatic,
    "pr-only": PROnly,
    "ct-only": CTOnly,
}


def make_policy(name: str, library: Library,
                policy: SelectionPolicy | None = None):
    """Factory: policy object by case-insensitive name."""
    key = name.lower().replace("_", "-")
    if key not in _POLICIES:
        raise ValueError(f"unknown policy {name!r}; options: {sorted(_POLICIES)}")
    return _POLICIES[key](library, policy)
