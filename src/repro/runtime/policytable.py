"""Compiled O(1) policy lookup tables for the Runtime Manager.

:meth:`RuntimeManager.select` is exact but still computed per decision
tick: a ``searchsorted`` over the throughput-sorted index plus a
tie-break scan. For a *frozen* Library the decision is a pure function
of (workload, loaded accelerator, accuracy floor), and the workload
enters only through ``pos = searchsorted(ips, workload * headroom)`` —
a monotone step function with at most ``len(index)`` breakpoints. This
module compiles that function onto a uniform workload grid:

* the cell width is a **power of two**, so ``workload / h`` (computed
  as ``workload * (1/h)``) is an exact float operation and
  ``int(workload * inv)`` lands every workload in exactly the cell that
  contains it — no rounding guards on the hot path;
* a cell is *safe* exactly when ``pos`` agrees at both of its edges
  (multiplying by a positive headroom and ``searchsorted`` are both
  monotone, so edge agreement proves constancy inside); unsafe cells —
  at most one per distinct serving-IPS value — defer to the index;
* for every reachable ``pos`` (plus the degraded-mode row beyond the
  fastest entry) the winning entry is tabulated per *slot* — one slot
  per library accelerator plus a "nothing loaded" slot — reproducing
  the full tie-break semantics: rounded-accuracy groups, the stability
  bonus (or the graded partial-reconfiguration switch cost when a
  model is installed), energy, and library order.

Exactness is preserved the same way :mod:`repro.edge.fastsim` preserves
it against the event loop: whenever the table cannot *prove* it gives
the indexed answer — an unsafe cell, a NaN workload, an unknown
``current`` entry — the lookup falls through to the index path.
Staleness is detected via ``Library._version`` (plus entry count and
policy identity) and ``RuntimeManager.select`` recompiles
automatically, so library mutations mid-campaign stay correct.

:meth:`RuntimeManager.compile_policy_table` additionally *installs* the
compiled decision as a per-instance ``select`` closure over plain
Python lists (see :meth:`PolicyTable.install_fast_select`), which is
what makes a table-backed selection a genuine single array lookup.
Tables are cheap to share: compiling once and reusing across thousands
of simulated edge servers is the point (see ROADMAP's fleet-scale
sharding item).
"""

from __future__ import annotations

import math
from bisect import bisect_left

import numpy as np

from .manager import RuntimeManager, _SelectionIndex

__all__ = ["PolicyTable"]


def _winner_row(idx: _SelectionIndex, pos: int, accels: list,
                model) -> list:
    """Winning entry at ``pos`` for the no-current slot then each
    accelerator slot, mirroring ``RuntimeManager.select`` exactly."""
    group = idx.groups[idx.suffix_max_acc[pos]]
    best_plain = None
    reps: dict = {}  # accelerator -> (key, entry): best member per accel
    for k in group[bisect_left(group, pos):]:
        lib_i = idx.order[k]
        e = idx.entries[lib_i]
        key = (-e.energy_per_inference_j, -lib_i)
        if best_plain is None or key > best_plain[0]:
            best_plain = (key, e)
        r = reps.get(e.accelerator)
        if r is None or key > r[0]:
            reps[e.accelerator] = (key, e)
    # Slot 0: nothing loaded. Without a model the bonus never fires;
    # with one, the switch cost from None is the full bitstream load for
    # every candidate — constant, so the plain winner is exact there too.
    row = [best_plain[1]]
    for a in accels:
        if model is None:
            r = reps.get(a)
            row.append((r or best_plain)[1])
        else:
            best = None
            for b, (key, e) in reps.items():
                full = (-model.switch_time_s(a, b),) + key
                if best is None or full > best[0]:
                    best = (full, e)
            row.append(best[1])
    return row


def _degraded_row(idx: _SelectionIndex, accels: list, model) -> list:
    """Degraded-mode winners (workload beyond every qualified entry)."""
    ties = idx.degraded_acc_ok or idx.degraded_all
    row = [ties[0]]
    for a in accels:
        if model is None:
            pick = ties[0]
            for e in ties:
                if e.accelerator == a:
                    pick = e
                    break
            row.append(pick)
        else:
            best = None
            for e in ties:
                c = model.switch_time_s(a, e.accelerator)
                if best is None or c < best[0]:
                    best = (c, e)
            row.append(best[1])
    return row


class _Level:
    """One compiled accuracy level: exact grid + winner rows."""

    __slots__ = ("m", "ncells", "wtop", "inv", "cell_pos", "posrows",
                 "unsafe")

    def __init__(self, idx: _SelectionIndex, accels: list, model,
                 headroom: float, cells: int):
        m = len(idx.order)
        self.m = m
        # posrows[p][slot] = winner at searchsorted position p; the
        # degraded-mode row sits at p == m.
        posrows = [_winner_row(idx, pos, accels, model)
                   for pos in range(m)]
        posrows.append(_degraded_row(idx, accels, model))
        self.posrows = posrows
        if m == 0:
            # Nothing qualifies: every workload is degraded-mode.
            self.ncells, self.wtop, self.inv = 0, 0.0, 0.0
            self.cell_pos, self.unsafe = [], 0
            return
        # Grid top: any workload >= wtop must be degraded (pos == m),
        # i.e. wtop * headroom must exceed the fastest qualified entry.
        # The cell width h is a power of two, so j*h, wtop = ncells*h
        # and workload*(1/h) are all exact float arithmetic: a lookup
        # provably lands in the cell containing its workload.
        top_ips = float(idx.ips[-1])
        span = top_ips / headroom * 1.125 + 1.0
        h = 2.0 ** math.ceil(math.log2(span / cells))
        ncells = int(math.ceil(span / h))
        wtop = ncells * h
        while int(idx.ips.searchsorted(wtop * headroom,
                                       side="left")) < m:
            ncells += 1  # float-safety net; never taken in practice
            wtop = ncells * h
        # pos at every edge, under the same float ops select() performs
        # (multiply by headroom, then searchsorted side="left").
        edges = np.arange(ncells + 1, dtype=np.float64) * h
        ps = idx.ips.searchsorted(edges * headroom, side="left")
        cell_pos = [int(ps[j]) if ps[j] == ps[j + 1] else -1
                    for j in range(ncells)]
        self.ncells = ncells
        self.wtop = wtop
        self.inv = 1.0 / h  # exact: h is a power of two
        self.cell_pos = cell_pos
        self.unsafe = sum(1 for p in cell_pos if p < 0)

    def lookup_slot(self, workload_ips: float, slot: int):
        """Winner for a slot, or ``None`` = defer to the index."""
        if workload_ips >= self.wtop:
            return self.posrows[self.m][slot]
        if not workload_ips >= 0.0:
            return None  # negative or NaN: the index path handles it
        pos = self.cell_pos[int(workload_ips * self.inv)]
        if pos < 0:
            return None  # unsafe cell: a pos breakpoint inside
        return self.posrows[pos][slot]


class PolicyTable:
    """The compiled decision function of one :class:`RuntimeManager`.

    Built by :meth:`RuntimeManager.compile_policy_table`. ``lookup``
    answers a query in O(1) or returns ``None`` when falling back to
    the index is required for exactness (see module docstring);
    ``install_fast_select`` returns the flattened closure form of the
    same function.
    """

    def __init__(self, manager: RuntimeManager, cells: int = 8192,
                 extra_accuracy_levels: tuple = ()):
        if cells < 1:
            raise ValueError("cells must be >= 1")
        lib = manager.library
        self.policy = manager.policy
        self.version = lib._version
        self.size = len(lib.entries)
        self.cells = cells
        self.extra_accuracy_levels = tuple(extra_accuracy_levels)
        model = manager.reconfig_model
        self._graded = model is not None
        accels = lib.accelerators()
        self._slot = {a: i + 1 for i, a in enumerate(accels)}
        self._stride = len(accels) + 1
        headroom = self.policy.headroom
        primary = manager.min_accuracy
        self._levels: dict = {}
        for floor in dict.fromkeys((primary, *self.extra_accuracy_levels)):
            idx = manager._index() if floor == primary \
                else _SelectionIndex(lib, floor)
            self._levels[floor] = _Level(idx, accels, model, headroom,
                                         cells)
        active = self._levels[primary]
        self._active = active
        # Expanded per-entry cell rows for the fast-select closure:
        # row[cell] = winner (None = unsafe), row[-1] = degraded winner.
        # Slots whose winner column is identical share one row, so the
        # expansion is small for the common case of few tie groups.
        lvl = active
        ncells = lvl.ncells
        by_sig: dict = {}
        slot_rows = []
        for s in range(self._stride):
            col = [lvl.posrows[p][s] for p in range(lvl.m + 1)]
            sig = tuple(map(id, col))
            row = by_sig.get(sig)
            if row is None:
                row = [col[p] if p >= 0 else None
                       for p in lvl.cell_pos]
                row.append(col[lvl.m])  # degraded at row[-1]
                by_sig[sig] = row
            slot_rows.append(row)
        # Library entries are the usual ``current`` values: an id-keyed
        # row map skips hashing AcceleratorId per query. Entries are
        # kept alive by the winner rows / library, so ids are stable for
        # the table's lifetime (a stale table is never consulted).
        rows = {id(None): slot_rows[0]}
        for e in lib.entries:
            rows[id(e)] = slot_rows[self._slot[e.accelerator]]
        self._rows = rows
        self._shared_rows = len(by_sig)

    def lookup(self, workload_ips: float, current=None):
        """The tabulated selection, or ``None`` = ask the index."""
        if current is None:
            slot = 0
        else:
            slot = self._slot.get(current.accelerator)
            if slot is None:
                if self._graded:
                    return None  # unknown accel: graded cost unknown
                slot = 0  # binary bonus can never fire: plain winner
        return self._active.lookup_slot(workload_ips, slot)

    def lookup_at(self, min_accuracy: float, workload_ips: float,
                  current=None):
        """Lookup against a precompiled extra accuracy level.

        Returns ``None`` when the level was not compiled or the query
        needs the index (callers keep an index path for exactness).
        """
        lvl = self._levels.get(min_accuracy)
        if lvl is None:
            return None
        if current is None:
            slot = 0
        else:
            slot = self._slot.get(current.accelerator)
            if slot is None:
                if self._graded:
                    return None
                slot = 0
        return lvl.lookup_slot(workload_ips, slot)

    def install_fast_select(self, manager: RuntimeManager):
        """Build the flattened closure form of this table's decision.

        The closure shadows ``manager.select`` (the caller assigns it):
        one dict probe on ``id(current)`` plus one list index answer the
        query; anything it cannot prove — staleness, unknown ``current``,
        an unsafe cell, a degenerate workload — defers to the unbound
        :meth:`RuntimeManager.select`, which recompiles or falls back to
        the index as needed.
        """
        lib = manager.library
        version = self.version
        size = self.size
        policy = self.policy
        wtop = self._active.wtop
        inv = self._active.inv
        rows = self._rows
        slow = RuntimeManager.select
        _id, _int, _len = id, int, len

        def fast_select(workload_ips, current=None):
            if lib._version != version or policy is not manager.policy \
                    or _len(lib.entries) != size:
                return slow(manager, workload_ips, current)
            row = rows.get(_id(current))
            if row is None:
                return slow(manager, workload_ips, current)
            if workload_ips >= wtop:
                return row[-1]
            if not workload_ips >= 0.0:
                return slow(manager, workload_ips, current)
            e = row[_int(workload_ips * inv)]
            if e is None:
                return slow(manager, workload_ips, current)
            return e

        return fast_select

    def stats(self) -> dict:
        """Compile-time shape facts (for benchmarks and debugging)."""
        return {
            "cells": self.cells,
            "grid_cells": self._active.ncells,
            "levels": len(self._levels),
            "slots": self._stride,
            "entries": self.size,
            "positions": self._active.m + 1,
            "shared_rows": self._shared_rows,
            "unsafe_cells": {f"{floor:.6f}": lvl.unsafe
                             for floor, lvl in self._levels.items()},
            "graded_cost_model": self._graded,
        }
