"""FPGA reconfiguration controller and switch-cost models.

Tracks which accelerator (bitstream) is loaded and charges the
reconfiguration dead time whenever the runtime manager switches pruning
rates. The paper measured 4 reconfigurations totalling 580 ms on the
ZCU104 (~145 ms each); while a swap is in progress the accelerator
serves nothing.

:class:`PartialReconfigModel` refines the flat 145 ms: the floorplan is
split into reconfigurable regions and a switch rewrites only the regions
whose contents differ between the outgoing and incoming design, so
switches between related variants (e.g. the early-exit and backbone
builds of the same pruning rate) cost a fraction of a full swap. Both
the :class:`ReconfigurationController` (what a swap actually costs) and
:class:`~repro.runtime.manager.RuntimeManager` (how switch cost breaks
selection ties) accept the model, so the serving simulators and the
policy optimize the same calculus.

Under fault injection (:mod:`repro.runtime.faults`) an attempt may fail:
the dead time is burned but the previously loaded bitstream stays
active. Failed attempts are recorded as events with ``success=False`` so
degraded-mode accounting can separate useful swaps from wasted ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..finn.bitstream import RECONFIG_MS_ZCU104
from .library import AcceleratorId

__all__ = ["ReconfigurationController", "ReconfigEvent",
           "PartialReconfigModel"]


@dataclass(frozen=True)
class PartialReconfigModel:
    """Per-region partial reconfiguration costing.

    The accelerator floorplan is modeled as ``regions`` reconfigurable
    regions: ``regions - exit_regions`` backbone pipeline stages plus
    ``exit_regions`` early-exit classifier regions. Two designs share a
    region when its contents are identical — a backbone stage when
    uniform pruning leaves that stage's channel count unchanged, an exit
    region when both designs carry the same exit configuration (both
    absent, or both present with the same exit-pruning state and rate).
    A switch rewrites only the differing regions::

        cost = overhead_s + changed/regions * (full_time_s - overhead_s)

    capped at ``full_time_s`` — partial reconfiguration is never worse
    than reloading the full bitstream. ``overhead_s`` is the fixed
    ICAP/PCAP setup cost every non-trivial swap pays.
    """

    regions: int = 8
    exit_regions: int = 2
    overhead_s: float = 0.010
    full_time_s: float = RECONFIG_MS_ZCU104 / 1000.0
    stage_widths: tuple = (64, 64, 128, 128, 256, 256)

    def __post_init__(self):
        if self.regions < 1:
            raise ValueError("regions must be >= 1")
        if not 0 <= self.exit_regions < self.regions:
            raise ValueError("exit_regions must be in [0, regions)")
        if len(self.stage_widths) != self.regions - self.exit_regions:
            raise ValueError(
                f"stage_widths must name {self.regions - self.exit_regions}"
                f" backbone stages (one per non-exit region), got "
                f"{len(self.stage_widths)}")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be >= 0")
        if self.full_time_s < self.overhead_s:
            raise ValueError("full_time_s must be >= overhead_s")

    def signature(self, accelerator: AcceleratorId) -> tuple:
        """Per-region content signature of one design."""
        rate = accelerator.pruning_rate
        stages = tuple(max(1, round(w * (1.0 - rate)))
                       for w in self.stage_widths)
        if accelerator.variant == "ee":
            exit_rate = rate if accelerator.pruned_exits else 0.0
            exits = tuple(("exit", k, round(exit_rate, 6))
                          for k in range(self.exit_regions))
        else:
            exits = tuple(("blank", k) for k in range(self.exit_regions))
        return stages + exits

    def changed_regions(self, a: AcceleratorId, b: AcceleratorId) -> int:
        """Regions that must be rewritten to go from ``a`` to ``b``."""
        if a == b:
            return 0
        return sum(ra != rb for ra, rb
                   in zip(self.signature(a), self.signature(b)))

    def switch_time_s(self, current: AcceleratorId | None,
                      target: AcceleratorId) -> float:
        """Dead time of loading ``target`` over ``current``.

        ``current=None`` (nothing deployed yet) is a full configuration;
        identical designs cost nothing.
        """
        if current is None:
            return self.full_time_s
        changed = self.changed_regions(current, target)
        if changed == 0:
            return 0.0
        frac = changed / self.regions
        return min(self.full_time_s,
                   self.overhead_s
                   + frac * (self.full_time_s - self.overhead_s))

    @classmethod
    def parse(cls, text: str) -> "PartialReconfigModel":
        """Build a model from a CLI spec.

        ``"on"``/``"default"`` give the defaults; otherwise a
        comma-separated ``key=value`` list with keys ``regions``,
        ``exit_regions``, ``overhead_ms``, ``full_ms``.
        """
        text = (text or "").strip().lower()
        if text in ("", "on", "default", "true", "1"):
            return cls()
        kwargs: dict = {}
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad partial-reconfig token {token!r} (expected "
                    f"key=value, e.g. 'regions=8,overhead_ms=10')")
            key, _, value = token.partition("=")
            key = key.strip().replace("-", "_")
            try:
                if key in ("regions", "exit_regions"):
                    kwargs[key] = int(value)
                elif key == "overhead_ms":
                    kwargs["overhead_s"] = float(value) / 1000.0
                elif key == "full_ms":
                    kwargs["full_time_s"] = float(value) / 1000.0
                else:
                    raise ValueError(
                        f"unknown partial-reconfig key {key!r} (options:"
                        f" regions, exit_regions, overhead_ms, full_ms)")
            except ValueError as exc:
                if "unknown partial-reconfig" in str(exc):
                    raise
                raise ValueError(
                    f"bad partial-reconfig value {value!r} for "
                    f"{key!r}") from exc
        if "regions" in kwargs:
            backbone = kwargs["regions"] - kwargs.get("exit_regions", 2)
            if backbone < 1:
                raise ValueError("regions must exceed exit_regions")
            widths = PartialReconfigModel.stage_widths
            kwargs["stage_widths"] = tuple(
                widths[i % len(widths)] for i in range(backbone))
        return cls(**kwargs)


@dataclass(frozen=True)
class ReconfigEvent:
    """One bitstream swap attempt."""

    time_s: float
    from_accelerator: AcceleratorId | None
    to_accelerator: AcceleratorId
    duration_s: float
    success: bool = True


@dataclass
class ReconfigurationController:
    """Bitstream state machine with measured swap cost.

    ``cost_model`` switches the controller from the flat
    ``reconfig_time_s`` per swap to per-region partial-reconfiguration
    costing (:class:`PartialReconfigModel`): the dead time of each
    attempt depends on how much of the floorplan actually changes.
    """

    reconfig_time_s: float = RECONFIG_MS_ZCU104 / 1000.0
    current: AcceleratorId | None = None
    events: list = field(default_factory=list)
    cost_model: PartialReconfigModel | None = None

    def needs_switch(self, target: AcceleratorId) -> bool:
        return self.current != target

    def planned_duration_s(self, target: AcceleratorId) -> float:
        """Nominal dead time a switch to ``target`` would cost now."""
        if not self.needs_switch(target):
            return 0.0
        if self.cost_model is not None:
            return self.cost_model.switch_time_s(self.current, target)
        return self.reconfig_time_s

    def attempt_switch(self, target: AcceleratorId, now_s: float = 0.0,
                       duration_s: float | None = None,
                       fails: bool = False) -> tuple[bool, float]:
        """Attempt to load ``target``; returns ``(success, dead_time_s)``.

        ``duration_s`` overrides the nominal swap time (latency jitter);
        ``fails`` marks the attempt as a failure — the dead time is still
        charged (the board was busy with the aborted transfer) but the
        loaded bitstream does not change. A no-op attempt (``target``
        already loaded) succeeds instantly and records nothing.
        """
        if not self.needs_switch(target):
            return True, 0.0
        dead = self.planned_duration_s(target) if duration_s is None \
            else duration_s
        if dead < 0:
            raise ValueError("reconfiguration duration must be >= 0")
        self.events.append(ReconfigEvent(now_s, self.current, target,
                                         dead, success=not fails))
        if not fails:
            self.current = target
        return not fails, dead

    def switch(self, target: AcceleratorId, now_s: float = 0.0) -> float:
        """Load ``target``; returns the dead time incurred (0 if loaded).

        The first load at deployment is also charged (the board must be
        configured once before serving).
        """
        _, dead = self.attempt_switch(target, now_s=now_s)
        return dead

    @property
    def count(self) -> int:
        """Number of swap attempts (including the initial load)."""
        return len(self.events)

    @property
    def failed_count(self) -> int:
        return sum(1 for e in self.events if not e.success)

    @property
    def total_dead_time_s(self) -> float:
        """Dead time over all attempts, successful or not."""
        return sum(e.duration_s for e in self.events)

    @property
    def failed_dead_time_s(self) -> float:
        """Dead time wasted on failed attempts."""
        return sum(e.duration_s for e in self.events if not e.success)

    def runtime_swaps(self) -> list:
        """Successful swaps excluding the initial deployment load."""
        return [e for e in self.events
                if e.from_accelerator is not None and e.success]

    def failed_attempts(self) -> list:
        return [e for e in self.events if not e.success]
