"""FPGA reconfiguration controller.

Tracks which accelerator (bitstream) is loaded and charges the
reconfiguration dead time whenever the runtime manager switches pruning
rates. The paper measured 4 reconfigurations totalling 580 ms on the
ZCU104 (~145 ms each); while a swap is in progress the accelerator
serves nothing.

Under fault injection (:mod:`repro.runtime.faults`) an attempt may fail:
the dead time is burned but the previously loaded bitstream stays
active. Failed attempts are recorded as events with ``success=False`` so
degraded-mode accounting can separate useful swaps from wasted ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..finn.bitstream import RECONFIG_MS_ZCU104
from .library import AcceleratorId

__all__ = ["ReconfigurationController", "ReconfigEvent"]


@dataclass(frozen=True)
class ReconfigEvent:
    """One bitstream swap attempt."""

    time_s: float
    from_accelerator: AcceleratorId | None
    to_accelerator: AcceleratorId
    duration_s: float
    success: bool = True


@dataclass
class ReconfigurationController:
    """Bitstream state machine with measured swap cost."""

    reconfig_time_s: float = RECONFIG_MS_ZCU104 / 1000.0
    current: AcceleratorId | None = None
    events: list = field(default_factory=list)

    def needs_switch(self, target: AcceleratorId) -> bool:
        return self.current != target

    def attempt_switch(self, target: AcceleratorId, now_s: float = 0.0,
                       duration_s: float | None = None,
                       fails: bool = False) -> tuple[bool, float]:
        """Attempt to load ``target``; returns ``(success, dead_time_s)``.

        ``duration_s`` overrides the nominal swap time (latency jitter);
        ``fails`` marks the attempt as a failure — the dead time is still
        charged (the board was busy with the aborted transfer) but the
        loaded bitstream does not change. A no-op attempt (``target``
        already loaded) succeeds instantly and records nothing.
        """
        if not self.needs_switch(target):
            return True, 0.0
        dead = self.reconfig_time_s if duration_s is None else duration_s
        if dead < 0:
            raise ValueError("reconfiguration duration must be >= 0")
        self.events.append(ReconfigEvent(now_s, self.current, target,
                                         dead, success=not fails))
        if not fails:
            self.current = target
        return not fails, dead

    def switch(self, target: AcceleratorId, now_s: float = 0.0) -> float:
        """Load ``target``; returns the dead time incurred (0 if loaded).

        The first load at deployment is also charged (the board must be
        configured once before serving).
        """
        _, dead = self.attempt_switch(target, now_s=now_s)
        return dead

    @property
    def count(self) -> int:
        """Number of swap attempts (including the initial load)."""
        return len(self.events)

    @property
    def failed_count(self) -> int:
        return sum(1 for e in self.events if not e.success)

    @property
    def total_dead_time_s(self) -> float:
        """Dead time over all attempts, successful or not."""
        return sum(e.duration_s for e in self.events)

    @property
    def failed_dead_time_s(self) -> float:
        """Dead time wasted on failed attempts."""
        return sum(e.duration_s for e in self.events if not e.success)

    def runtime_swaps(self) -> list:
        """Successful swaps excluding the initial deployment load."""
        return [e for e in self.events
                if e.from_accelerator is not None and e.success]

    def failed_attempts(self) -> list:
        return [e for e in self.events if not e.success]
