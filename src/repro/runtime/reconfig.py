"""FPGA reconfiguration controller.

Tracks which accelerator (bitstream) is loaded and charges the
reconfiguration dead time whenever the runtime manager switches pruning
rates. The paper measured 4 reconfigurations totalling 580 ms on the
ZCU104 (~145 ms each); while a swap is in progress the accelerator
serves nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..finn.bitstream import RECONFIG_MS_ZCU104
from .library import AcceleratorId

__all__ = ["ReconfigurationController", "ReconfigEvent"]


@dataclass(frozen=True)
class ReconfigEvent:
    """One bitstream swap."""

    time_s: float
    from_accelerator: AcceleratorId | None
    to_accelerator: AcceleratorId
    duration_s: float


@dataclass
class ReconfigurationController:
    """Bitstream state machine with measured swap cost."""

    reconfig_time_s: float = RECONFIG_MS_ZCU104 / 1000.0
    current: AcceleratorId | None = None
    events: list = field(default_factory=list)

    def needs_switch(self, target: AcceleratorId) -> bool:
        return self.current != target

    def switch(self, target: AcceleratorId, now_s: float = 0.0) -> float:
        """Load ``target``; returns the dead time incurred (0 if loaded).

        The first load at deployment is also charged (the board must be
        configured once before serving).
        """
        if not self.needs_switch(target):
            return 0.0
        self.events.append(ReconfigEvent(now_s, self.current, target,
                                         self.reconfig_time_s))
        self.current = target
        return self.reconfig_time_s

    @property
    def count(self) -> int:
        """Number of swaps performed (including the initial load)."""
        return len(self.events)

    @property
    def total_dead_time_s(self) -> float:
        return sum(e.duration_s for e in self.events)

    def runtime_swaps(self) -> list:
        """Swaps excluding the initial deployment load."""
        return [e for e in self.events if e.from_accelerator is not None]
