"""Reference policies beyond the paper's baselines.

* :class:`OraclePolicy` — selects with perfect knowledge of the *peak*
  workload of the whole run, so it never reconfigures mid-run and never
  under-provisions: an upper bound on achievable serving (at the cost of
  accuracy headroom).
* :class:`RandomPolicy` — picks uniformly at random among
  accuracy-feasible entries at every decision: a sanity lower bound that
  any sensible manager must beat.

Both implement the standard policy interface
(``select``/``requires_reconfiguration``) so the edge simulator and the
benchmarks can drive them interchangeably.
"""

from __future__ import annotations

import numpy as np

from .library import Library, LibraryEntry
from .manager import RuntimeManager, SelectionPolicy

__all__ = ["OraclePolicy", "RandomPolicy"]


class OraclePolicy(RuntimeManager):
    """Provision once for a known peak workload.

    ``peak_ips`` is typically the workload's worst case
    (``nominal * (1 + deviation)``); the oracle picks the most accurate
    entry that covers it and sticks with that choice for the whole run.
    """

    name = "Oracle"

    def __init__(self, library: Library, peak_ips: float,
                 policy: SelectionPolicy | None = None):
        filtered = library.filtered(lambda e: e.accelerator.variant == "ee")
        if len(filtered) == 0:
            filtered = library
        super().__init__(filtered, policy)
        if peak_ips < 0:
            raise ValueError("peak_ips must be >= 0")
        self._choice = super().select(peak_ips)

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        return self._choice


class RandomPolicy:
    """Uniform choice among accuracy-feasible entries (sanity baseline)."""

    name = "Random"

    def __init__(self, library: Library,
                 policy: SelectionPolicy | None = None, seed: int = 0):
        if len(library) == 0:
            raise ValueError("cannot sample from an empty library")
        self.policy = policy or SelectionPolicy()
        reference = library.best_accuracy()
        min_accuracy = reference - self.policy.accuracy_loss_threshold
        self._pool = [e for e in library if e.accuracy >= min_accuracy] \
            or list(library)
        self._rng = np.random.default_rng(seed)

    def select(self, workload_ips: float,
               current: LibraryEntry | None = None) -> LibraryEntry:
        if workload_ips < 0:
            raise ValueError("workload must be >= 0")
        return self._pool[int(self._rng.integers(len(self._pool)))]

    def requires_reconfiguration(self, current, selected) -> bool:
        if current is None:
            return True
        return current.accelerator != selected.accelerator
