"""The AdaPEx Library: the design-time artifact the runtime searches.

The Library is "a table containing a list of pruned early-exit CNNs
(rows) with their accuracy as well as throughput values" (paper, Sec.
IV-A), extended here with the power/energy figures the evaluation needs.
One :class:`LibraryEntry` describes one operating point: a concrete
accelerator (identified by pruning rate and exit-pruning mode — switching
accelerators costs an FPGA reconfiguration) at one confidence threshold
(free to change at runtime).

Persistence is integrity-checked: the JSON carries a schema version and
a content checksum, every entry field is validated on load, and
:meth:`Library.load` can either fail closed (``strict=True``, the
default — raises :class:`~repro.core.errors.IntegrityError`) or salvage
what survives from a truncated/corrupt file (``strict=False``), with the
damage itemized in the attached :class:`LoadReport`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import asdict, dataclass, field

from ..core.errors import IntegrityError

__all__ = ["AcceleratorId", "LibraryEntry", "Library", "LoadReport",
           "SCHEMA_VERSION"]

# On-disk library format. 1 = the original {metadata, entries} shape
# (still readable); 2 adds the schema/checksum envelope.
SCHEMA_VERSION = 2


@dataclass(frozen=True, order=True)
class AcceleratorId:
    """Identity of one synthesized bitstream.

    Two entries with the same ``AcceleratorId`` can be switched between
    for free (only the host-side confidence threshold changes); different
    ids require reconfiguring the FPGA.
    """

    pruning_rate: float
    pruned_exits: bool = True
    variant: str = "ee"  # "ee" = early-exit model, "backbone" = no exits
    # Precision axis: "base" = the trained QuantSpec (paper W2A2); other
    # names (e.g. "int8") are post-training-quantized variants — a
    # different bitstream, hence part of the identity.
    precision: str = "base"
    # Pruning-criterion axis: which filter ranking selected the surviving
    # channels ("l1" = the paper's magnitude ranking). Different criteria
    # keep different filters, hence different bitstreams.
    criterion: str = "l1"
    # Retraining-schedule axis: "hard" = prune-then-retrain, "psfp" =
    # progressive soft filter pruning. Same widths, different weights —
    # still a different bitstream.
    schedule: str = "hard"

    def label(self) -> str:
        mode = "px" if self.pruned_exits else "npx"
        label = (f"{self.variant}-pr"
                 f"{int(round(self.pruning_rate * 100)):02d}-{mode}")
        if self.precision != "base":
            label += f"-{self.precision}"
        if self.criterion != "l1":
            label += f"-{self.criterion}"
        if self.schedule != "hard":
            label += f"-{self.schedule}"
        return label


@dataclass(frozen=True)
class LibraryEntry:
    """One (accelerator, confidence threshold) operating point."""

    accelerator: AcceleratorId
    confidence_threshold: float
    accuracy: float
    exit_rates: tuple
    latency_s: float
    serving_ips: float
    energy_per_inference_j: float
    power_idle_w: float
    power_busy_w: float
    achieved_pruning_rate: float = 0.0
    exit_latencies_s: tuple = ()
    resources: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def service_latency_s(self, exit_idx: int) -> float:
        """Latency of one inference that takes the given exit."""
        if self.exit_latencies_s:
            return self.exit_latencies_s[exit_idx]
        return self.latency_s

    def power_at(self, arrival_ips: float) -> float:
        """Board power at a given served rate (linear idle-busy blend)."""
        if self.serving_ips <= 0:
            return self.power_idle_w
        util = min(arrival_ips / self.serving_ips, 1.0)
        return self.power_idle_w + util * (self.power_busy_w - self.power_idle_w)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["accelerator"] = asdict(self.accelerator)
        # Keep the serialized form (and everything pinned to it: golden
        # traces, point caches, library JSON) unchanged for entries on the
        # historical defaults of each axis (base precision, l1 criterion,
        # hard schedule).
        if d["accelerator"].get("precision") == "base":
            del d["accelerator"]["precision"]
        if d["accelerator"].get("criterion") == "l1":
            del d["accelerator"]["criterion"]
        if d["accelerator"].get("schedule") == "hard":
            del d["accelerator"]["schedule"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LibraryEntry":
        """Rebuild an entry from its dict form.

        Raises :class:`~repro.core.errors.IntegrityError` (never a bare
        ``KeyError``/``TypeError``) when a field is missing, mistyped,
        or unknown, naming the offending field.
        """
        _validate_entry_dict(d)
        d = dict(d)
        d["accelerator"] = AcceleratorId(**d["accelerator"])
        d["exit_rates"] = tuple(d["exit_rates"])
        d["exit_latencies_s"] = tuple(d.get("exit_latencies_s", ()))
        return cls(**d)


# ----------------------------------------------------------------------
# entry validation
# ----------------------------------------------------------------------
_ENTRY_REQUIRED = {
    "accelerator": "object",
    "confidence_threshold": "number",
    "accuracy": "number",
    "exit_rates": "number list",
    "latency_s": "number",
    "serving_ips": "number",
    "energy_per_inference_j": "number",
    "power_idle_w": "number",
    "power_busy_w": "number",
}
_ENTRY_OPTIONAL = {
    "achieved_pruning_rate": "number",
    "exit_latencies_s": "number list",
    "resources": "object",
    "extra": "object",
}
_ACCEL_REQUIRED = {"pruning_rate": "number"}
_ACCEL_OPTIONAL = {"pruned_exits": "bool", "variant": "str",
                   "precision": "str", "criterion": "str",
                   "schedule": "str"}


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


_TYPE_CHECKS = {
    "number": _is_number,
    "bool": lambda v: isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "object": lambda v: isinstance(v, dict),
    "number list": lambda v: isinstance(v, (list, tuple))
    and all(_is_number(x) for x in v),
}


def _check_fields(d: dict, required: dict, optional: dict,
                  where: str = "") -> None:
    for name, kind in required.items():
        if name not in d:
            raise IntegrityError(f"missing field {where}{name!r}")
        if not _TYPE_CHECKS[kind](d[name]):
            raise IntegrityError(
                f"field {where}{name!r} must be a {kind}, got "
                f"{type(d[name]).__name__} ({d[name]!r})")
    for name, kind in optional.items():
        if name in d and not _TYPE_CHECKS[kind](d[name]):
            raise IntegrityError(
                f"field {where}{name!r} must be a {kind}, got "
                f"{type(d[name]).__name__} ({d[name]!r})")
    unknown = set(d) - set(required) - set(optional)
    if unknown:
        raise IntegrityError(
            f"unknown field(s) {sorted(unknown)}"
            + (f" in {where.rstrip('.')}" if where else ""))


def _validate_entry_dict(d) -> None:
    """Field-level validation of one serialized LibraryEntry."""
    if not isinstance(d, dict):
        raise IntegrityError(
            f"entry must be an object, got {type(d).__name__}")
    _check_fields(d, _ENTRY_REQUIRED, _ENTRY_OPTIONAL)
    _check_fields(d["accelerator"], _ACCEL_REQUIRED, _ACCEL_OPTIONAL,
                  where="accelerator.")


@dataclass
class LoadReport:
    """What :meth:`Library.from_json` found while reading a file."""

    schema: int | None = None
    checksum_ok: bool | None = None  # None = no checksum to verify
    # True when the entry scanner ran: the file was unparseable or
    # root-level-damaged JSON, not a normal structured load.
    salvaged: bool = False
    dropped: list = field(default_factory=list)  # (entry_index, reason)
    loaded: int = 0

    @property
    def intact(self) -> bool:
        return (not self.salvaged and not self.dropped
                and self.checksum_ok is not False)

    def summary(self) -> str:
        if self.intact:
            return f"library intact: {self.loaded} entries"
        bits = [f"{self.loaded} entries loaded"]
        if self.salvaged:
            bits.append("salvaged from unparseable JSON")
        if self.checksum_ok is False:
            bits.append("checksum mismatch")
        if self.dropped:
            bits.append(f"{len(self.dropped)} entries dropped")
        return "library damaged: " + ", ".join(bits)


class Library:
    """Queryable collection of operating points."""

    def __init__(self, entries: list | None = None, metadata: dict | None = None):
        self.entries: list[LibraryEntry] = list(entries or [])
        self.metadata: dict = dict(metadata or {})
        # Populated by from_json()/load(); None for in-memory libraries.
        self.load_report: LoadReport | None = None
        # Bumped on every mutation; consumers holding derived structures
        # (e.g. RuntimeManager's selection index) use it to detect
        # staleness cheaply.
        self._version = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: LibraryEntry) -> None:
        self.entries.append(entry)
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def accelerators(self) -> list[AcceleratorId]:
        seen = []
        for e in self.entries:
            if e.accelerator not in seen:
                seen.append(e.accelerator)
        return seen

    def entries_for(self, accelerator: AcceleratorId) -> list[LibraryEntry]:
        return [e for e in self.entries if e.accelerator == accelerator]

    def best_accuracy(self) -> float:
        """Highest accuracy in the library (the reference point the user's
        accuracy threshold is measured from)."""
        if not self.entries:
            raise ValueError("library is empty")
        return max(e.accuracy for e in self.entries)

    def feasible(self, min_accuracy: float, required_ips: float) -> list:
        """Entries meeting both the accuracy bound and the workload.

        .. deprecated::
            Linear scan allocating a fresh list per call. Selection
            answers the same query from ``RuntimeManager``'s
            throughput-sorted index (or its compiled policy table);
            callers that want the raw candidate set should filter
            ``library.entries`` directly.
        """
        warnings.warn(
            "Library.feasible is deprecated: selection goes through "
            "RuntimeManager's throughput-sorted index / compiled policy "
            "table; filter library.entries directly for offline analysis",
            DeprecationWarning, stacklevel=2)
        return [e for e in self.entries
                if e.accuracy >= min_accuracy and e.serving_ips >= required_ips]

    def quarantine(self, predicate, reason: str = "quarantined") -> int:
        """Remove entries matching ``predicate``, recording the gaps.

        Mirrors the sweep supervisor's metadata format (one dict per
        removed design point under ``metadata["quarantined"]``) so a
        mid-campaign quarantine looks exactly like a generation-time one.
        Bumps ``_version`` when anything was removed, so derived
        structures (selection index, policy tables) rebuild. Returns the
        number of entries removed.
        """
        keep, gone = [], []
        for e in self.entries:
            (gone if predicate(e) else keep).append(e)
        if not gone:
            return 0
        self.entries = keep
        record = self.metadata.setdefault("quarantined", [])
        for e in gone:
            record.append({
                "variant": e.accelerator.variant,
                "rate": e.accelerator.pruning_rate,
                "kind": "runtime_quarantine",
                "message": reason,
            })
        self._version += 1
        return len(gone)

    def filtered(self, predicate) -> "Library":
        """New library view with only entries matching ``predicate``."""
        return Library([e for e in self.entries if predicate(e)],
                       dict(self.metadata))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @staticmethod
    def _content_checksum(metadata: dict, entry_dicts: list) -> str:
        """Checksum of the canonical content (key-sorted, no whitespace,
        so it is stable across save/load cycles and indentation)."""
        blob = json.dumps({"metadata": metadata, "entries": entry_dicts},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_json(self) -> str:
        entries = [e.to_dict() for e in self.entries]
        return json.dumps({
            "schema": SCHEMA_VERSION,
            "checksum": self._content_checksum(self.metadata, entries),
            "metadata": self.metadata,
            "entries": entries,
        }, indent=1)

    @classmethod
    def from_json(cls, text: str, strict: bool = True) -> "Library":
        """Parse a serialized library.

        ``strict=True`` (default) fails closed: any damage — unparseable
        JSON, unsupported schema, checksum mismatch, or an invalid entry
        — raises :class:`~repro.core.errors.IntegrityError`.
        ``strict=False`` salvages: every intact entry is loaded (whether
        the file is unparseable, mis-shaped at the root, or damaged per
        entry), with the damage itemized in the returned library's
        ``load_report``.
        """
        try:
            raw = json.loads(text)
        except ValueError as exc:
            if strict:
                raise IntegrityError(
                    "library JSON is unparseable (truncated or corrupt):"
                    f" {exc}") from exc
            return cls._salvage(text)
        try:
            return cls._from_raw(raw, strict)
        except IntegrityError:
            # Non-strict rejections can only be root-level damage (bad
            # shape, unsupported schema, mistyped metadata); the entry
            # scanner can still pull intact entries out of the text.
            if strict:
                raise
            return cls._salvage(text)

    @classmethod
    def _from_raw(cls, raw, strict: bool) -> "Library":
        if not isinstance(raw, dict) \
                or not isinstance(raw.get("entries"), list):
            raise IntegrityError(
                "library JSON must be an object with an 'entries' list")
        report = LoadReport()
        schema = raw.get("schema", 1)  # pre-envelope files are schema 1
        if not isinstance(schema, int) or isinstance(schema, bool) \
                or not 1 <= schema <= SCHEMA_VERSION:
            raise IntegrityError(
                f"unsupported library schema {schema!r} "
                f"(this build reads versions 1..{SCHEMA_VERSION})")
        report.schema = schema
        metadata = raw.get("metadata", {})
        if not isinstance(metadata, dict):
            raise IntegrityError("'metadata' must be an object")
        checksum = raw.get("checksum")
        if checksum is not None:
            report.checksum_ok = \
                checksum == cls._content_checksum(metadata, raw["entries"])
            if strict and not report.checksum_ok:
                raise IntegrityError(
                    "library checksum mismatch — the file was modified "
                    "or corrupted after it was written")
        entries = []
        for i, d in enumerate(raw["entries"]):
            try:
                entries.append(LibraryEntry.from_dict(d))
            except IntegrityError as exc:
                if strict:
                    raise IntegrityError(f"entry {i}: {exc}") from exc
                report.dropped.append((i, str(exc)))
        report.loaded = len(entries)
        library = cls(entries, metadata)
        library.load_report = report
        return library

    @classmethod
    def _salvage(cls, text: str) -> "Library":
        """Recover what survives from a file that cannot be read whole —
        JSON that no longer parses (e.g. truncated by a crash mid-write)
        or whose root shape is damaged: decode entry objects one by one
        until the broken region, dropping the rest."""
        report = LoadReport(salvaged=True)
        decoder = json.JSONDecoder()
        schema = re.search(r'"schema"\s*:\s*(\d+)', text)
        if schema:
            report.schema = int(schema.group(1))

        def skip_separators(pos: int) -> int:
            while pos < len(text) and text[pos] in " \t\r\n,":
                pos += 1
            return pos

        metadata = {}
        meta = re.search(r'"metadata"\s*:', text)
        if meta:
            try:
                obj, _ = decoder.raw_decode(text,
                                            skip_separators(meta.end()))
                if isinstance(obj, dict):
                    metadata = obj
            except ValueError:
                pass

        entries = []
        index = 0
        array = re.search(r'"entries"\s*:\s*\[', text)
        pos = array.end() if array else None
        while pos is not None:
            pos = skip_separators(pos)
            if pos >= len(text) or text[pos] == "]":
                break
            try:
                d, pos = decoder.raw_decode(text, pos)
            except ValueError:
                report.dropped.append(
                    (index, "truncated or malformed JSON"))
                break
            try:
                entries.append(LibraryEntry.from_dict(d))
            except IntegrityError as exc:
                report.dropped.append((index, str(exc)))
            index += 1
        report.loaded = len(entries)
        library = cls(entries, metadata)
        library.load_report = report
        return library

    def save(self, path) -> None:
        """Atomically persist (write temp + rename): a crash mid-save
        never leaves a half-written library behind."""
        path = str(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            f.write(self.to_json())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path, strict: bool = True) -> "Library":
        with open(path) as f:
            return cls.from_json(f.read(), strict=strict)
