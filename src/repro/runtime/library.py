"""The AdaPEx Library: the design-time artifact the runtime searches.

The Library is "a table containing a list of pruned early-exit CNNs
(rows) with their accuracy as well as throughput values" (paper, Sec.
IV-A), extended here with the power/energy figures the evaluation needs.
One :class:`LibraryEntry` describes one operating point: a concrete
accelerator (identified by pruning rate and exit-pruning mode — switching
accelerators costs an FPGA reconfiguration) at one confidence threshold
(free to change at runtime).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["AcceleratorId", "LibraryEntry", "Library"]


@dataclass(frozen=True, order=True)
class AcceleratorId:
    """Identity of one synthesized bitstream.

    Two entries with the same ``AcceleratorId`` can be switched between
    for free (only the host-side confidence threshold changes); different
    ids require reconfiguring the FPGA.
    """

    pruning_rate: float
    pruned_exits: bool = True
    variant: str = "ee"  # "ee" = early-exit model, "backbone" = no exits

    def label(self) -> str:
        mode = "px" if self.pruned_exits else "npx"
        return f"{self.variant}-pr{int(round(self.pruning_rate * 100)):02d}-{mode}"


@dataclass(frozen=True)
class LibraryEntry:
    """One (accelerator, confidence threshold) operating point."""

    accelerator: AcceleratorId
    confidence_threshold: float
    accuracy: float
    exit_rates: tuple
    latency_s: float
    serving_ips: float
    energy_per_inference_j: float
    power_idle_w: float
    power_busy_w: float
    achieved_pruning_rate: float = 0.0
    exit_latencies_s: tuple = ()
    resources: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def service_latency_s(self, exit_idx: int) -> float:
        """Latency of one inference that takes the given exit."""
        if self.exit_latencies_s:
            return self.exit_latencies_s[exit_idx]
        return self.latency_s

    def power_at(self, arrival_ips: float) -> float:
        """Board power at a given served rate (linear idle-busy blend)."""
        if self.serving_ips <= 0:
            return self.power_idle_w
        util = min(arrival_ips / self.serving_ips, 1.0)
        return self.power_idle_w + util * (self.power_busy_w - self.power_idle_w)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["accelerator"] = asdict(self.accelerator)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LibraryEntry":
        d = dict(d)
        d["accelerator"] = AcceleratorId(**d["accelerator"])
        d["exit_rates"] = tuple(d["exit_rates"])
        d["exit_latencies_s"] = tuple(d.get("exit_latencies_s", ()))
        return cls(**d)


class Library:
    """Queryable collection of operating points."""

    def __init__(self, entries: list | None = None, metadata: dict | None = None):
        self.entries: list[LibraryEntry] = list(entries or [])
        self.metadata: dict = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: LibraryEntry) -> None:
        self.entries.append(entry)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def accelerators(self) -> list[AcceleratorId]:
        seen = []
        for e in self.entries:
            if e.accelerator not in seen:
                seen.append(e.accelerator)
        return seen

    def entries_for(self, accelerator: AcceleratorId) -> list[LibraryEntry]:
        return [e for e in self.entries if e.accelerator == accelerator]

    def best_accuracy(self) -> float:
        """Highest accuracy in the library (the reference point the user's
        accuracy threshold is measured from)."""
        if not self.entries:
            raise ValueError("library is empty")
        return max(e.accuracy for e in self.entries)

    def feasible(self, min_accuracy: float, required_ips: float) -> list:
        """Entries meeting both the accuracy bound and the workload."""
        return [e for e in self.entries
                if e.accuracy >= min_accuracy and e.serving_ips >= required_ips]

    def filtered(self, predicate) -> "Library":
        """New library view with only entries matching ``predicate``."""
        return Library([e for e in self.entries if predicate(e)],
                       dict(self.metadata))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "metadata": self.metadata,
            "entries": [e.to_dict() for e in self.entries],
        }, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Library":
        raw = json.loads(text)
        return cls([LibraryEntry.from_dict(d) for d in raw["entries"]],
                   raw.get("metadata", {}))

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path) -> "Library":
        with open(path) as f:
            return cls.from_json(f.read())
