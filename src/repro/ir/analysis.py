"""Graph analyses over the IR, built on networkx.

Used by the compiler's sanity layer and by tooling: exit enumeration,
branch-point discovery, per-exit operation counts, and weighted critical
paths (handy for spotting which layer dominates an exit's latency before
committing to a folding).
"""

from __future__ import annotations

import networkx as nx

from .graph import IRGraph

__all__ = ["to_networkx", "exit_paths", "branch_points",
           "per_exit_op_counts", "critical_path", "verify_exit_structure"]


def to_networkx(graph: IRGraph) -> nx.DiGraph:
    """Node-level DAG: IR node names as vertices, tensor flows as edges."""
    g = nx.DiGraph()
    producer = {}
    for node in graph.nodes:
        g.add_node(node.name, op_type=node.op_type)
        for t in node.outputs:
            producer[t] = node.name
    for node in graph.nodes:
        for t in node.inputs:
            if t in producer:
                g.add_edge(producer[t], node.name, tensor=t)
    return g


def exit_paths(graph: IRGraph) -> list[list[str]]:
    """Node names on the path from the input to each graph output."""
    g = to_networkx(graph)
    paths = []
    for out in graph.output_names:
        sink = graph.producer(out)
        if sink is None:
            raise ValueError(f"output {out!r} has no producer")
        ancestors = nx.ancestors(g, sink.name) | {sink.name}
        order = [n.name for n in graph.topological_order()
                 if n.name in ancestors]
        paths.append(order)
    return paths


def branch_points(graph: IRGraph) -> list[str]:
    """Names of DuplicateStreams nodes, in topological order."""
    return [n.name for n in graph.topological_order()
            if n.op_type == "DuplicateStreams"]


def per_exit_op_counts(graph: IRGraph) -> list[dict]:
    """Operator census along each exit's path."""
    result = []
    for path in exit_paths(graph):
        counts: dict[str, int] = {}
        for name in path:
            op = graph.node_by_name(name).op_type
            counts[op] = counts.get(op, 0) + 1
        result.append(counts)
    return result


def critical_path(graph: IRGraph, weight_fn) -> tuple[list[str], float]:
    """Heaviest input-to-output chain under a per-node weight.

    ``weight_fn(node) -> float`` assigns each IR node a cost (e.g. MACs,
    or estimated cycles). Returns ``(node names, total weight)``.
    """
    g = to_networkx(graph)
    weights = {n.name: float(weight_fn(n)) for n in graph.nodes}
    best: dict[str, tuple[float, list]] = {}
    for node in graph.topological_order():
        preds = list(g.predecessors(node.name))
        if preds:
            prev_w, prev_path = max((best[p] for p in preds),
                                    key=lambda x: x[0])
        else:
            prev_w, prev_path = 0.0, []
        best[node.name] = (prev_w + weights[node.name],
                           prev_path + [node.name])
    total, path = max(best.values(), key=lambda x: x[0])
    return path, total


def verify_exit_structure(graph: IRGraph) -> None:
    """Structural invariants of a branched export.

    * the graph is a DAG,
    * every output is reachable from the input,
    * exactly ``num_exits - 1`` branch points exist and each feeds two
      distinct consumers,
    * exit paths are nested: each early exit shares its backbone prefix
      with the final exit.
    """
    g = to_networkx(graph)
    if not nx.is_directed_acyclic_graph(g):
        raise ValueError("IR graph has a cycle")
    paths = exit_paths(graph)
    num_exits = graph.metadata.get("num_exits", len(paths))
    branches = branch_points(graph)
    if len(branches) != num_exits - 1:
        raise ValueError(
            f"expected {num_exits - 1} branch points, found {len(branches)}")
    for name in branches:
        node = graph.node_by_name(name)
        consumers = {c.name for t in node.outputs
                     for c in graph.consumers(t)}
        if len(consumers) < 2:
            raise ValueError(f"branch {name!r} does not fan out")
    final = paths[-1]
    final_set = set(final)
    for early in paths[:-1]:
        shared = [n for n in early if n in final_set]
        # The shared backbone prefix must appear in the same order.
        filtered = [n for n in final if n in set(shared)]
        if filtered != shared:
            raise ValueError("exit path is not a nested extension of the "
                             "backbone prefix")
