"""ONNX-like intermediate representation for exported models.

The design-time flow exports each pruned early-exit model as a small
graph IR (the stand-in for the paper's ONNX export) that the FINN-like
compiler consumes. The IR is executable — :meth:`IRGraph.execute` runs a
batch through the graph — which lets tests assert that export and the
streamlining transformations preserve the network function exactly.

Supported operator set (everything CNV + exits lower to):

``Conv``             attrs: stride, padding, weight_bits; initializer W (+ bias)
``MatMul``           attrs: weight_bits; initializer W (+ bias)
``BatchNorm``        initializers scale, shift (inference-time affine)
``MultiThreshold``   initializers thresholds (C, L) and signs (C,); attrs step
``MaxPool``          attrs: kernel, stride
``Flatten``          —
``DuplicateStreams`` two outputs: backbone continuation + exit branch
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TensorInfo", "IRNode", "IRGraph"]

_VALID_OPS = {
    "Conv", "MatMul", "BatchNorm", "MultiThreshold", "MaxPool", "Flatten",
    "DuplicateStreams",
}


@dataclass
class TensorInfo:
    """Shape/precision metadata of one tensor (per-sample, no batch dim)."""

    name: str
    shape: tuple
    bits: int = 32  # activation precision flowing through this tensor

    @property
    def elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def stream_bits(self) -> int:
        """Bits needed to stream one element set of this tensor."""
        return self.elements * self.bits


@dataclass
class IRNode:
    """One operator instance."""

    op_type: str
    name: str
    inputs: list
    outputs: list
    attrs: dict = field(default_factory=dict)
    initializers: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op_type not in _VALID_OPS:
            raise ValueError(f"unsupported op_type {self.op_type!r}")
        if not self.outputs:
            raise ValueError(f"node {self.name} has no outputs")


class IRGraph:
    """A dataflow graph of :class:`IRNode` with single-producer tensors."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[IRNode] = []
        self.tensors: dict[str, TensorInfo] = {}
        self.input_name: str | None = None
        self.output_names: list[str] = []
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def set_input(self, name: str, shape: tuple, bits: int = 32) -> None:
        self.input_name = name
        self.tensors[name] = TensorInfo(name, tuple(shape), bits)

    def add_tensor(self, name: str, shape: tuple, bits: int = 32) -> None:
        if name in self.tensors:
            raise ValueError(f"tensor {name!r} already defined")
        self.tensors[name] = TensorInfo(name, tuple(shape), bits)

    def add_node(self, node: IRNode) -> IRNode:
        for t in node.inputs:
            if t not in self.tensors:
                raise ValueError(f"node {node.name}: unknown input tensor {t!r}")
        for t in node.outputs:
            if t not in self.tensors:
                raise ValueError(f"node {node.name}: undeclared output tensor {t!r}")
        if any(n.name == node.name for n in self.nodes):
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        return node

    def mark_output(self, tensor_name: str) -> None:
        if tensor_name not in self.tensors:
            raise ValueError(f"unknown tensor {tensor_name!r}")
        self.output_names.append(tensor_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def producer(self, tensor_name: str) -> IRNode | None:
        for node in self.nodes:
            if tensor_name in node.outputs:
                return node
        return None

    def consumers(self, tensor_name: str) -> list[IRNode]:
        return [n for n in self.nodes if tensor_name in n.inputs]

    def node_by_name(self, name: str) -> IRNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def topological_order(self) -> list[IRNode]:
        """Nodes in dependency order (raises on cycles/dangling inputs)."""
        ready = {self.input_name}
        remaining = list(self.nodes)
        order = []
        while remaining:
            progressed = False
            still = []
            for node in remaining:
                if all(t in ready for t in node.inputs):
                    order.append(node)
                    ready.update(node.outputs)
                    progressed = True
                else:
                    still.append(node)
            remaining = still
            if not progressed:
                names = [n.name for n in remaining]
                raise ValueError(f"graph has a cycle or dangling inputs: {names}")
        return order

    def validate(self) -> None:
        """Structural checks: single producer per tensor, outputs produced,
        acyclicity."""
        produced: dict[str, str] = {}
        for node in self.nodes:
            for t in node.outputs:
                if t in produced:
                    raise ValueError(
                        f"tensor {t!r} produced by both {produced[t]} "
                        f"and {node.name}"
                    )
                produced[t] = node.name
        if self.input_name is None:
            raise ValueError("graph has no input")
        for out in self.output_names:
            if out not in produced:
                raise ValueError(f"graph output {out!r} has no producer")
        self.topological_order()

    # ------------------------------------------------------------------
    # execution (reference semantics, used by tests)
    # ------------------------------------------------------------------
    def execute(self, x: np.ndarray) -> list[np.ndarray]:
        """Run a batch through the graph; returns one array per output."""
        from . import executors

        values: dict[str, np.ndarray] = {self.input_name: x}
        for node in self.topological_order():
            ins = [values[t] for t in node.inputs]
            outs = executors.execute_node(node, ins)
            for t, v in zip(node.outputs, outs):
                values[t] = v
        return [values[t] for t in self.output_names]

    def compile(self, dtype=np.float64, timer=None, sparse: bool = False):
        """Compile into a fused :class:`~repro.ir.engine.ExecutionPlan`.

        Convenience wrapper around :func:`repro.ir.engine.compile_graph`;
        see there for the numerical contract. ``sparse=True`` enables
        compile-time dead-channel elimination for masked/pruned graphs.
        """
        from .engine import compile_graph

        return compile_graph(self, dtype=dtype, timer=timer, sparse=sparse)

    # ------------------------------------------------------------------
    # mutation helpers for passes
    # ------------------------------------------------------------------
    def remove_node(self, node: IRNode, rewire_to: str | None = None) -> None:
        """Remove a single-input single-output node, rewiring consumers.

        ``rewire_to`` defaults to the node's input tensor: consumers of the
        node's output are repointed there, and graph outputs are updated.
        """
        if len(node.inputs) != 1 or len(node.outputs) != 1:
            raise ValueError("can only remove single-input/single-output nodes")
        src = rewire_to or node.inputs[0]
        out = node.outputs[0]
        for consumer in self.consumers(out):
            consumer.inputs = [src if t == out else t for t in consumer.inputs]
        self.output_names = [src if t == out else t for t in self.output_names]
        self.nodes.remove(node)
        self.tensors.pop(out, None)

    def stats(self) -> dict:
        """Counts per op type plus totals (used in reports/logs)."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        weights = sum(
            int(v.size)
            for n in self.nodes
            for k, v in n.initializers.items()
            if k == "weight"
        )
        return {"op_counts": counts, "num_nodes": len(self.nodes),
                "weight_elements": weights}
