"""IR (de)serialization — the reproduction's "ONNX file".

A graph is stored as a JSON header (nodes, tensors, attributes,
input/output bindings, metadata) plus an NPZ payload holding every
initializer array. ``save_graph``/``load_graph`` round-trip exactly, so
the design-time flow can hand compiled artifacts across process
boundaries the way the paper hands ONNX files from Brevitas to FINN.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .graph import IRGraph, IRNode

__all__ = ["save_graph", "load_graph", "graph_to_payload",
           "graph_from_payload"]

_FORMAT_VERSION = 1


def graph_to_payload(graph: IRGraph) -> tuple[dict, dict]:
    """Split a graph into a JSON-able header and an array payload."""
    header = {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "input": {
            "name": graph.input_name,
            "shape": list(graph.tensors[graph.input_name].shape),
            "bits": graph.tensors[graph.input_name].bits,
        },
        "tensors": [
            {"name": t.name, "shape": list(t.shape), "bits": t.bits}
            for t in graph.tensors.values() if t.name != graph.input_name
        ],
        "outputs": list(graph.output_names),
        "metadata": _jsonable(graph.metadata),
        "nodes": [],
    }
    arrays: dict[str, np.ndarray] = {}
    for node in graph.nodes:
        entry = {
            "op_type": node.op_type,
            "name": node.name,
            "inputs": list(node.inputs),
            "outputs": list(node.outputs),
            "attrs": _jsonable(node.attrs),
            "initializers": [],
        }
        for key, value in node.initializers.items():
            ref = f"{node.name}::{key}"
            arrays[ref] = np.asarray(value)
            entry["initializers"].append({"key": key, "ref": ref})
        header["nodes"].append(entry)
    return header, arrays


def graph_from_payload(header: dict, arrays: dict) -> IRGraph:
    """Rebuild a graph from :func:`graph_to_payload` output."""
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported IR format version {version!r}")
    graph = IRGraph(header["name"])
    graph.set_input(header["input"]["name"],
                    tuple(header["input"]["shape"]),
                    header["input"]["bits"])
    for t in header["tensors"]:
        graph.add_tensor(t["name"], tuple(t["shape"]), t["bits"])
    for entry in header["nodes"]:
        inits = {item["key"]: np.asarray(arrays[item["ref"]])
                 for item in entry["initializers"]}
        graph.add_node(IRNode(
            op_type=entry["op_type"],
            name=entry["name"],
            inputs=list(entry["inputs"]),
            outputs=list(entry["outputs"]),
            attrs=dict(entry["attrs"]),
            initializers=inits,
        ))
    for out in header["outputs"]:
        graph.mark_output(out)
    md = dict(header.get("metadata", {}))
    if "input_shape" in md:
        md["input_shape"] = tuple(md["input_shape"])
    graph.metadata = md
    graph.validate()
    return graph


def save_graph(graph: IRGraph, path: str) -> None:
    """Write ``<path>.json`` (header) and ``<path>.npz`` (initializers)."""
    header, arrays = graph_to_payload(graph)
    with open(path + ".json", "w") as f:
        json.dump(header, f, indent=1)
    np.savez_compressed(path + ".npz", **arrays)


def load_graph(path: str) -> IRGraph:
    """Inverse of :func:`save_graph`."""
    json_path, npz_path = path + ".json", path + ".npz"
    for p in (json_path, npz_path):
        if not os.path.exists(p):
            raise FileNotFoundError(p)
    with open(json_path) as f:
        header = json.load(f)
    with np.load(npz_path) as data:
        arrays = {k: data[k] for k in data.files}
    return graph_from_payload(header, arrays)


def _jsonable(obj):
    """Recursively convert numpy scalars/tuples to JSON-native types."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj
