"""Export a trained :class:`~repro.nn.BranchedModel` to the IR.

This is the reproduction's stand-in for the paper's ONNX export step:
quantized layers are exported with their *quantized* weights (what the
FPGA will actually hold), BatchNorm becomes an inference-time affine, and
quantized activations become MultiThreshold nodes — the form FINN's
streamlining produces before hardware mapping. Early-exit branch points
are materialized as ``DuplicateStreams`` nodes (the paper's new HLS branch
module).
"""

from __future__ import annotations

import numpy as np

from ..nn.graph import BranchedModel, Sequential
from ..nn.layers import (
    BatchNorm,
    Conv2D,
    Flatten,
    Linear,
    MaxPool2d,
    QuantConv2D,
    QuantLinear,
    QuantReLU,
    ReLU,
)
from ..nn.quant import activation_thresholds
from .graph import IRGraph, IRNode

__all__ = ["export_model"]


class _Exporter:
    def __init__(self, graph: IRGraph):
        self.graph = graph
        self._counter = 0

    def fresh_tensor(self, shape: tuple, bits: int) -> str:
        name = f"t{self._counter}"
        self._counter += 1
        self.graph.add_tensor(name, shape, bits)
        return name

    def emit_sequential(self, seq: Sequential, src: str, shape: tuple,
                        prefix: str) -> tuple[str, tuple]:
        """Emit nodes for one Sequential; returns (output tensor, shape)."""
        g = self.graph
        for layer in seq.layers:
            out_shape = layer.output_shape(shape)
            if isinstance(layer, Conv2D):
                bits = layer.quant.weight_bits if isinstance(layer, QuantConv2D) \
                    else 32
                dst = self.fresh_tensor(out_shape, 32)
                inits = {"weight": layer.effective_weight().copy()}
                if layer.has_bias:
                    inits["bias"] = layer.params["bias"].copy()
                g.add_node(IRNode(
                    "Conv", f"{prefix}{layer.name}", [src], [dst],
                    attrs={"stride": layer.stride, "padding": layer.padding,
                           "kernel": layer.kernel_size, "weight_bits": bits},
                    initializers=inits,
                ))
            elif isinstance(layer, Linear):
                bits = layer.quant.weight_bits if isinstance(layer, QuantLinear) \
                    else 32
                dst = self.fresh_tensor(out_shape, 32)
                inits = {"weight": layer.effective_weight().copy()}
                if layer.has_bias:
                    inits["bias"] = layer.params["bias"].copy()
                g.add_node(IRNode(
                    "MatMul", f"{prefix}{layer.name}", [src], [dst],
                    attrs={"weight_bits": bits}, initializers=inits,
                ))
            elif isinstance(layer, BatchNorm):
                scale, shift = layer.fold_scale_shift()
                dst = self.fresh_tensor(out_shape, 32)
                g.add_node(IRNode(
                    "BatchNorm", f"{prefix}{layer.name}", [src], [dst],
                    initializers={"scale": scale.copy(), "shift": shift.copy()},
                ))
            elif isinstance(layer, QuantReLU):
                bits = layer.quant.act_bits
                levels = 2 ** bits - 1
                step = layer.quant.act_range / levels
                channels = shape[0]
                base = activation_thresholds(bits, layer.quant.act_range)
                dst = self.fresh_tensor(out_shape, bits)
                g.add_node(IRNode(
                    "MultiThreshold", f"{prefix}{layer.name}", [src], [dst],
                    attrs={"step": step, "act_bits": bits},
                    initializers={
                        "thresholds": np.tile(base, (channels, 1)),
                        "signs": np.ones(channels),
                    },
                ))
            elif isinstance(layer, MaxPool2d):
                dst = self.fresh_tensor(out_shape, g.tensors[src].bits)
                g.add_node(IRNode(
                    "MaxPool", f"{prefix}{layer.name}", [src], [dst],
                    attrs={"kernel": layer.kernel_size, "stride": layer.stride},
                ))
            elif isinstance(layer, Flatten):
                dst = self.fresh_tensor(out_shape, g.tensors[src].bits)
                g.add_node(IRNode("Flatten", f"{prefix}{layer.name}",
                                  [src], [dst]))
            elif isinstance(layer, ReLU):
                raise ValueError(
                    "plain ReLU is not dataflow-mappable; use QuantReLU"
                )
            else:
                raise ValueError(f"cannot export layer {layer!r}")
            src = dst
            shape = out_shape
        return src, shape


def export_model(model: BranchedModel, name: str | None = None) -> IRGraph:
    """Export a branched model; outputs ordered early exits first."""
    model.eval()
    graph = IRGraph(name or model.name)
    graph.set_input("input", model.input_shape, bits=32)
    graph.metadata["num_exits"] = model.num_exits
    graph.metadata["input_shape"] = tuple(model.input_shape)

    exporter = _Exporter(graph)
    src = "input"
    shape = model.input_shape
    exit_outputs: list[str] = []
    for si, seg in enumerate(model.segments):
        src, shape = exporter.emit_sequential(seg, src, shape, prefix=f"seg{si}/")
        if si in model.exits:
            # Materialize the branch: duplicate the stream, one copy feeds
            # the backbone continuation, the other the exit branch.
            bits = graph.tensors[src].bits
            trunk = exporter.fresh_tensor(shape, bits)
            branch_in = exporter.fresh_tensor(shape, bits)
            graph.add_node(IRNode(
                "DuplicateStreams", f"branch{si}", [src], [trunk, branch_in],
            ))
            out, _ = exporter.emit_sequential(
                model.exits[si], branch_in, shape, prefix=f"exit{si}/"
            )
            exit_outputs.append(out)
            src = trunk
    for out in exit_outputs:
        graph.mark_output(out)
    graph.mark_output(src)
    graph.validate()
    return graph
