"""Reference executors for IR nodes.

These define the semantics of each operator; tests compare IR execution
against the source :class:`~repro.nn.BranchedModel` to prove that export
and streamlining are function-preserving.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from .graph import IRNode

__all__ = ["execute_node"]


def _conv(node: IRNode, x: np.ndarray) -> np.ndarray:
    w = node.initializers["weight"]
    b = node.initializers.get("bias")
    out, _ = F.conv2d_forward(x, w, b, node.attrs.get("stride", 1),
                              node.attrs.get("padding", 0))
    return out


def _matmul(node: IRNode, x: np.ndarray) -> np.ndarray:
    w = node.initializers["weight"]
    out = x @ w.T
    b = node.initializers.get("bias")
    if b is not None:
        out = out + b
    return out


def _batchnorm(node: IRNode, x: np.ndarray) -> np.ndarray:
    scale = node.initializers["scale"]
    shift = node.initializers["shift"]
    if x.ndim == 4:
        return x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
    return x * scale + shift


# Cap on the broadcast temp the MultiThreshold oracle materializes: the
# level axis is processed in chunks so the peak extra memory stays near
# x.size * chunk doubles instead of x.size * levels.
_MT_CHUNK_ELEMS = 2_000_000


def _multithreshold(node: IRNode, x: np.ndarray) -> np.ndarray:
    """Per-channel threshold counting: out = step * #(sign*x > sign*t_k)."""
    thresholds = node.initializers["thresholds"]  # (C, L)
    signs = node.initializers["signs"]  # (C,)
    step = node.attrs["step"]
    c, levels = thresholds.shape
    if x.ndim == 4:
        xe = x[:, :, :, :, None]  # (N, C, H, W, 1)
        t = thresholds.reshape(1, c, 1, 1, levels)
        s = signs.reshape(1, c, 1, 1, 1)
    elif x.ndim == 2:
        xe = x[:, :, None]  # (N, C, 1)
        t = thresholds.reshape(1, c, levels)
        s = signs.reshape(1, c, 1)
    else:
        raise ValueError(f"MultiThreshold expects 2-D or 4-D input, got {x.ndim}-D")
    chunk = max(1, _MT_CHUNK_ELEMS // max(x.size, 1))
    code = np.zeros(x.shape, dtype=np.int64)
    for lo in range(0, levels, chunk):
        code += (s * xe > s * t[..., lo:lo + chunk]).sum(axis=-1)
    return step * code.astype(np.float64)


def _maxpool(node: IRNode, x: np.ndarray) -> np.ndarray:
    out, _ = F.maxpool2d_forward(x, node.attrs["kernel"],
                                 node.attrs.get("stride"))
    return out


def _flatten(node: IRNode, x: np.ndarray) -> np.ndarray:
    return x.reshape(x.shape[0], -1)


_EXECUTORS = {
    "Conv": _conv,
    "MatMul": _matmul,
    "BatchNorm": _batchnorm,
    "MultiThreshold": _multithreshold,
    "MaxPool": _maxpool,
    "Flatten": _flatten,
}


def execute_node(node: IRNode, inputs: list) -> list:
    """Execute one node; returns a list of output arrays."""
    if node.op_type == "DuplicateStreams":
        return [inputs[0], inputs[0]]
    fn = _EXECUTORS.get(node.op_type)
    if fn is None:
        raise ValueError(f"no executor for op {node.op_type!r}")
    return [fn(node, inputs[0])]
