"""Streamlining transformations on the IR.

FINN's compiler "streamlines" exported quantized networks so every
remaining op is dataflow-mappable. The key transformation reproduced here
is BatchNorm absorption: an inference-time affine ``a*x + b`` followed by
a MultiThreshold can be folded into per-channel thresholds
``t' = (t - b) / a`` (with the comparison direction flipped wherever
``a < 0``), leaving a pure threshold unit that maps straight into the
MVTU's threshold memory.
"""

from __future__ import annotations

import copy

import numpy as np

from .graph import IRGraph

__all__ = ["absorb_batchnorm", "streamline", "count_unabsorbed_batchnorms",
           "slice_channels"]


def _fold_affine_into_thresholds(thresholds: np.ndarray, signs: np.ndarray,
                                 scale: np.ndarray, shift: np.ndarray):
    """New (thresholds, signs) so that counting crossings of ``x`` equals
    counting crossings of ``scale*x + shift`` against the old thresholds."""
    c, levels = thresholds.shape
    new_t = np.empty_like(thresholds, dtype=np.float64)
    new_s = signs.astype(np.float64).copy()
    for ch in range(c):
        a = scale[ch]
        b = shift[ch]
        if a == 0.0:
            # BN output is the constant b: each threshold is either always
            # or never crossed regardless of x.
            crossed = (signs[ch] * b) > (signs[ch] * thresholds[ch])
            new_t[ch] = np.where(crossed, -np.inf, np.inf)
            new_s[ch] = 1.0
        else:
            new_t[ch] = (thresholds[ch] - b) / a
            new_s[ch] = signs[ch] * np.sign(a)
            if a < 0:
                # Flipping direction reverses threshold order; keep them
                # ascending in crossing order for the hardware unit.
                new_t[ch] = new_t[ch][::-1]
    return new_t, new_s


def absorb_batchnorm(graph: IRGraph) -> int:
    """Fold every BatchNorm that feeds a MultiThreshold; returns #folded."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes):
            if node.op_type != "MultiThreshold":
                continue
            producer = graph.producer(node.inputs[0])
            if producer is None or producer.op_type != "BatchNorm":
                continue
            if len(graph.consumers(producer.outputs[0])) != 1:
                continue  # BN output also used elsewhere; cannot fold
            scale = producer.initializers["scale"]
            shift = producer.initializers["shift"]
            new_t, new_s = _fold_affine_into_thresholds(
                node.initializers["thresholds"],
                node.initializers["signs"],
                scale, shift,
            )
            node.initializers["thresholds"] = new_t
            node.initializers["signs"] = new_s
            graph.remove_node(producer)
            folded += 1
            changed = True
    return folded


def count_unabsorbed_batchnorms(graph: IRGraph) -> int:
    return sum(1 for n in graph.nodes if n.op_type == "BatchNorm")


def slice_channels(graph: IRGraph, keep: dict) -> IRGraph:
    """Return a copy of ``graph`` with only the given channels kept.

    ``keep`` maps Conv/MatMul node names (full scoped form or the bare
    trailing segment) to sorted, unique arrays of **output** channels to
    keep. The pass is purely mechanical: it slices producer weight rows
    (plus bias), propagates the kept set through every per-channel op
    (MultiThreshold, BatchNorm, MaxPool, DuplicateStreams, Flatten) and
    slices each consumer's input columns to match. It performs *no*
    dead-channel analysis of its own — deciding what is safe to remove
    is the caller's job — which is exactly what makes it the independent
    oracle the compiled engine's ``sparse`` mode is tested against: the
    engine must produce bit-identical outputs to the dense plan of the
    graph this pass builds from the pruner's keep sets.
    """
    g = copy.deepcopy(graph)
    orig_shape = {name: tuple(info.shape) for name, info in graph.tensors.items()}
    # tensor name -> kept original channel (or flat feature) indices
    chan_keep: dict[str, np.ndarray | None] = {}

    def _keep_for(node):
        idx = keep.get(node.name)
        if idx is None:
            idx = keep.get(node.name.split("/")[-1])
        if idx is None:
            return None
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ValueError(f"{node.name}: cannot keep zero channels")
        if idx[0] < 0:
            raise ValueError(f"{node.name}: keep indices must be >= 0")
        if (np.diff(idx) <= 0).any():
            raise ValueError(f"{node.name}: keep indices must be sorted unique")
        return idx

    def _narrow(tensor: str, channels: int) -> None:
        info = g.tensors[tensor]
        info.shape = (channels,) + tuple(info.shape[1:])

    for node in g.topological_order():
        in_keep = chan_keep.get(node.inputs[0]) if node.inputs else None

        if node.op_type in ("Conv", "MatMul"):
            w = node.initializers["weight"]
            if in_keep is not None:
                w = w[:, in_keep]
            out_keep = _keep_for(node)
            if out_keep is not None:
                if out_keep[-1] >= w.shape[0]:
                    raise ValueError(
                        f"{node.name}: keep index {int(out_keep[-1])} out of "
                        f"range for {w.shape[0]} output channels")
                w = w[out_keep]
                bias = node.initializers.get("bias")
                if bias is not None:
                    node.initializers["bias"] = bias[out_keep]
                _narrow(node.outputs[0], out_keep.size)
            node.initializers["weight"] = np.ascontiguousarray(w)
            chan_keep[node.outputs[0]] = out_keep

        elif node.op_type == "MultiThreshold":
            if in_keep is not None:
                node.initializers["thresholds"] = \
                    node.initializers["thresholds"][in_keep]
                node.initializers["signs"] = node.initializers["signs"][in_keep]
                _narrow(node.outputs[0], in_keep.size)
            chan_keep[node.outputs[0]] = in_keep

        elif node.op_type == "BatchNorm":
            if in_keep is not None:
                node.initializers["scale"] = node.initializers["scale"][in_keep]
                node.initializers["shift"] = node.initializers["shift"][in_keep]
                _narrow(node.outputs[0], in_keep.size)
            chan_keep[node.outputs[0]] = in_keep

        elif node.op_type == "MaxPool":
            if in_keep is not None:
                _narrow(node.outputs[0], in_keep.size)
            chan_keep[node.outputs[0]] = in_keep

        elif node.op_type == "DuplicateStreams":
            for out in node.outputs:
                if in_keep is not None:
                    _narrow(out, in_keep.size)
                chan_keep[out] = in_keep

        elif node.op_type == "Flatten":
            if in_keep is not None:
                shape = orig_shape[node.inputs[0]]
                hw = int(np.prod(shape[1:])) if len(shape) > 1 else 1
                flat = (in_keep[:, None] * hw + np.arange(hw)).ravel()
                g.tensors[node.outputs[0]].shape = (flat.size,)
                chan_keep[node.outputs[0]] = flat
            else:
                chan_keep[node.outputs[0]] = None

        else:
            if in_keep is not None:
                raise ValueError(
                    f"cannot slice channels through {node.op_type!r} "
                    f"({node.name})")
            for out in node.outputs:
                chan_keep[out] = None

    g.validate()
    return g


def streamline(graph: IRGraph) -> dict:
    """Run the full streamlining pipeline; returns a small report dict.

    After streamlining, a dataflow-mappable graph contains only Conv,
    MatMul, MultiThreshold, MaxPool, Flatten, and DuplicateStreams nodes
    (BatchNorm remains only if it feeds a graph output directly, which the
    CNV topology never does for intermediate layers).
    """
    folded = absorb_batchnorm(graph)
    graph.validate()
    return {
        "batchnorms_absorbed": folded,
        "batchnorms_remaining": count_unabsorbed_batchnorms(graph),
        "num_nodes": len(graph.nodes),
    }
