"""Streamlining transformations on the IR.

FINN's compiler "streamlines" exported quantized networks so every
remaining op is dataflow-mappable. The key transformation reproduced here
is BatchNorm absorption: an inference-time affine ``a*x + b`` followed by
a MultiThreshold can be folded into per-channel thresholds
``t' = (t - b) / a`` (with the comparison direction flipped wherever
``a < 0``), leaving a pure threshold unit that maps straight into the
MVTU's threshold memory.
"""

from __future__ import annotations

import numpy as np

from .graph import IRGraph

__all__ = ["absorb_batchnorm", "streamline", "count_unabsorbed_batchnorms"]


def _fold_affine_into_thresholds(thresholds: np.ndarray, signs: np.ndarray,
                                 scale: np.ndarray, shift: np.ndarray):
    """New (thresholds, signs) so that counting crossings of ``x`` equals
    counting crossings of ``scale*x + shift`` against the old thresholds."""
    c, levels = thresholds.shape
    new_t = np.empty_like(thresholds, dtype=np.float64)
    new_s = signs.astype(np.float64).copy()
    for ch in range(c):
        a = scale[ch]
        b = shift[ch]
        if a == 0.0:
            # BN output is the constant b: each threshold is either always
            # or never crossed regardless of x.
            crossed = (signs[ch] * b) > (signs[ch] * thresholds[ch])
            new_t[ch] = np.where(crossed, -np.inf, np.inf)
            new_s[ch] = 1.0
        else:
            new_t[ch] = (thresholds[ch] - b) / a
            new_s[ch] = signs[ch] * np.sign(a)
            if a < 0:
                # Flipping direction reverses threshold order; keep them
                # ascending in crossing order for the hardware unit.
                new_t[ch] = new_t[ch][::-1]
    return new_t, new_s


def absorb_batchnorm(graph: IRGraph) -> int:
    """Fold every BatchNorm that feeds a MultiThreshold; returns #folded."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes):
            if node.op_type != "MultiThreshold":
                continue
            producer = graph.producer(node.inputs[0])
            if producer is None or producer.op_type != "BatchNorm":
                continue
            if len(graph.consumers(producer.outputs[0])) != 1:
                continue  # BN output also used elsewhere; cannot fold
            scale = producer.initializers["scale"]
            shift = producer.initializers["shift"]
            new_t, new_s = _fold_affine_into_thresholds(
                node.initializers["thresholds"],
                node.initializers["signs"],
                scale, shift,
            )
            node.initializers["thresholds"] = new_t
            node.initializers["signs"] = new_s
            graph.remove_node(producer)
            folded += 1
            changed = True
    return folded


def count_unabsorbed_batchnorms(graph: IRGraph) -> int:
    return sum(1 for n in graph.nodes if n.op_type == "BatchNorm")


def streamline(graph: IRGraph) -> dict:
    """Run the full streamlining pipeline; returns a small report dict.

    After streamlining, a dataflow-mappable graph contains only Conv,
    MatMul, MultiThreshold, MaxPool, Flatten, and DuplicateStreams nodes
    (BatchNorm remains only if it feeds a graph output directly, which the
    CNV topology never does for intermediate layers).
    """
    folded = absorb_batchnorm(graph)
    graph.validate()
    return {
        "batchnorms_absorbed": folded,
        "batchnorms_remaining": count_unabsorbed_batchnorms(graph),
        "num_nodes": len(graph.nodes),
    }
