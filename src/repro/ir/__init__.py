"""Executable ONNX-like IR: export, streamlining, serialization, analysis."""

from .analysis import (
    branch_points,
    critical_path,
    exit_paths,
    per_exit_op_counts,
    to_networkx,
    verify_exit_structure,
)
from .engine import ExecutionPlan, compile_graph
from .export import export_model
from .graph import IRGraph, IRNode, TensorInfo
from .passes import (
    absorb_batchnorm,
    count_unabsorbed_batchnorms,
    slice_channels,
    streamline,
)
from .serialize import load_graph, save_graph

__all__ = [
    "branch_points", "critical_path", "exit_paths", "per_exit_op_counts",
    "to_networkx", "verify_exit_structure",
    "ExecutionPlan", "compile_graph",
    "export_model",
    "IRGraph", "IRNode", "TensorInfo",
    "absorb_batchnorm", "count_unabsorbed_batchnorms", "slice_channels",
    "streamline",
    "load_graph", "save_graph",
]
