"""Compiled execution engine for the IR: fused, buffer-reusing plans.

:func:`compile_graph` turns a (preferably streamlined) :class:`IRGraph`
into an :class:`ExecutionPlan` — a flat list of pre-bound steps that runs
the same network function as :meth:`IRGraph.execute` but without the
per-node interpretation overhead:

* **BatchNorm folding** — inference-time affine nodes are folded into the
  weight/bias initializers of the producing ``Conv``/``MatMul`` (mirrors
  FINN's streamlining when the graph was exported without it).
* **Conv/MatMul → MultiThreshold fusion** — thresholding is applied to
  the post-GEMM ``(rows, channels)`` matrix *before* the NHWC→NCHW
  transpose, so the quantization step touches a contiguous matrix.
* **searchsorted thresholding** — the reference ``MultiThreshold``
  executor materializes an ``(N, C, H, W, levels)`` broadcast temp; the
  plan counts crossed thresholds per channel with ``np.searchsorted``
  over pre-sorted thresholds (O(log L), no rank-5 temp, identical codes).
* **Preallocated activation buffers** — a compile-time liveness scan
  assigns each intermediate tensor a reusable arena slot; repeated
  :meth:`ExecutionPlan.run` calls allocate (almost) nothing.

Numerical contract: on streamlined graphs (no ``BatchNorm`` nodes) the
plan is **bit-identical** to the reference executors in float64 — GEMMs
hit the same BLAS path and thresholding performs the same float
comparisons. Folding a BatchNorm into a Conv/MatMul changes rounding, so
BN-bearing graphs agree only to floating-point tolerance. Threshold
inputs containing NaN are undefined (the oracle yields code 0, the plan
yields ``levels``); exported models never produce NaN activations.
"""

from __future__ import annotations

import time

import numpy as np

from .graph import IRGraph, IRNode

__all__ = ["compile_graph", "ExecutionPlan"]


# ----------------------------------------------------------------------
# threshold kernels (searchsorted-based)
# ----------------------------------------------------------------------

def _prepare_thresholds(node: IRNode, dtype) -> tuple[np.ndarray, np.ndarray, float]:
    """Pre-sort per-channel thresholds in the sign-transformed domain.

    The reference semantics count ``#(sign*x > sign*t_k)`` per channel.
    With ``v = sign * t`` sorted ascending and ``u = sign * x``, that
    count equals ``np.searchsorted(v, u, side="left")`` (the number of
    ``v_k`` strictly below ``u``) for any threshold order.
    """
    thresholds = node.initializers["thresholds"].astype(dtype, copy=False)
    signs = node.initializers["signs"].astype(dtype, copy=False)
    v = np.sort(signs[:, None] * thresholds, axis=1)
    v = np.ascontiguousarray(v)
    return v, signs, float(node.attrs["step"])


# Below this many levels a vectorized level sweep beats per-channel
# ``searchsorted`` (whose per-element constant dwarfs the O(log L) win
# for the 2–4 bit activations CNV actually uses). Both paths produce
# the same integer codes; the equivalence tests cover each.
_SWEEP_MAX_LEVELS = 16


def _threshold_matrix(m: np.ndarray, v: np.ndarray, signs: np.ndarray,
                      step, scratch: np.ndarray | None = None) -> None:
    """In-place thresholding of a channels-last ``(rows, C)`` matrix."""
    c_count, levels = v.shape
    if levels <= _SWEEP_MAX_LEVELS:
        u = m if (signs == 1.0).all() else m * signs
        code = scratch if scratch is not None else np.empty_like(m)
        np.greater(u, v[:, 0], out=code, casting="unsafe")
        for k in range(1, levels):
            code += u > v[:, k]
        np.multiply(code, step, out=m)
        return
    for c in range(c_count):
        col = m[:, c]
        u = col if signs[c] == 1.0 else signs[c] * col
        m[:, c] = np.searchsorted(v[c], u, side="left")
    m *= step


def _threshold_tensor(x: np.ndarray, v: np.ndarray, signs: np.ndarray,
                      step, out: np.ndarray) -> np.ndarray:
    """Threshold an NCHW or NC tensor channel-by-channel into ``out``."""
    c_count, levels = v.shape
    cshape = (1, c_count, 1, 1) if x.ndim == 4 else (c_count,)
    if levels <= _SWEEP_MAX_LEVELS:
        u = x if (signs == 1.0).all() else x * signs.reshape(cshape)
        np.greater(u, v[:, 0].reshape(cshape), out=out, casting="unsafe")
        for k in range(1, levels):
            out += u > v[:, k].reshape(cshape)
        out *= step
        return out
    for c in range(c_count):
        xc = x[:, c]
        u = xc if signs[c] == 1.0 else signs[c] * xc
        out[:, c] = np.searchsorted(v[c], u, side="left")
    out *= step
    return out


# ----------------------------------------------------------------------
# im2col into a preallocated buffer
# ----------------------------------------------------------------------

def _im2col_into(x: np.ndarray, kernel: int, stride: int, padding: int,
                 out_h: int, out_w: int, cols: np.ndarray) -> np.ndarray:
    """:func:`repro.nn.functional.im2col` writing into ``cols``."""
    n, c = x.shape[0], x.shape[1]
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)), mode="constant")
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out6 = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    np.copyto(out6, windows.transpose(0, 2, 3, 1, 4, 5))
    return cols


# ----------------------------------------------------------------------
# runtime arena
# ----------------------------------------------------------------------

class _Arena:
    """Lazily grown flat buffers, one per compile-time slot."""

    def __init__(self, num_slots: int, dtype):
        self.dtype = np.dtype(dtype)
        self._buffers: list[np.ndarray | None] = [None] * num_slots

    def view(self, slot: int, shape: tuple) -> np.ndarray:
        n = int(np.prod(shape))
        buf = self._buffers[slot]
        if buf is None or buf.size < n:
            buf = np.empty(n, dtype=self.dtype)
            self._buffers[slot] = buf
        return buf[:n].reshape(shape)

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers if b is not None)


# ----------------------------------------------------------------------
# compiled steps
# ----------------------------------------------------------------------

class _Step:
    """One fused operation of the plan; fills ``env[self.out]``."""

    out: str

    def run(self, env: dict, arena: _Arena, plan: "ExecutionPlan") -> None:
        raise NotImplementedError


class _ConvStep(_Step):
    """Conv (+ folded BatchNorm) (+ fused MultiThreshold)."""

    def __init__(self, node: IRNode, src: str, out: str, dtype,
                 slot: int, cols_slot: int,
                 weight: np.ndarray, bias: np.ndarray | None,
                 threshold=None):
        self.name = node.name
        self.src = src
        self.out = out
        self.stride = node.attrs.get("stride", 1)
        self.padding = node.attrs.get("padding", 0)
        self.slot = slot
        self.cols_slot = cols_slot
        out_ch, in_ch, kernel, _ = weight.shape
        self.kernel = kernel
        self.out_ch = out_ch
        self.patch = in_ch * kernel * kernel
        # Keep the transpose as a view: the reference executor computes
        # ``cols @ W.reshape(out_ch, -1).T`` and BLAS must see the same
        # operand layout for bit-identical results.
        self.weight_t = weight.reshape(out_ch, -1).T
        self.bias = bias
        self.threshold = threshold  # (v_sorted, signs, step) | None

    def run(self, env, arena, plan):
        x = env[self.src]
        n = x.shape[0]
        from ..nn.functional import conv_output_size
        out_h = conv_output_size(x.shape[2], self.kernel, self.stride,
                                 self.padding)
        out_w = conv_output_size(x.shape[3], self.kernel, self.stride,
                                 self.padding)
        rows = n * out_h * out_w
        cols = arena.view(self.cols_slot, (rows, self.patch))
        _im2col_into(x, self.kernel, self.stride, self.padding,
                     out_h, out_w, cols)
        m = arena.view(self.slot, (rows, self.out_ch))
        np.matmul(cols, self.weight_t, out=m)
        if self.bias is not None:
            m += self.bias
        if self.threshold is not None:
            t0 = time.perf_counter()
            # The im2col matrix is dead once the GEMM has run; its slot
            # doubles as the threshold-code scratch.
            _threshold_matrix(m, *self.threshold,
                              scratch=arena.view(self.cols_slot, m.shape))
            plan.threshold_seconds += time.perf_counter() - t0
        # NHWC -> NCHW as a (non-contiguous) view over the arena slot.
        env[self.out] = m.reshape(n, out_h, out_w, self.out_ch) \
                         .transpose(0, 3, 1, 2)


class _MatMulStep(_Step):
    """MatMul (+ folded BatchNorm) (+ fused MultiThreshold)."""

    def __init__(self, node: IRNode, src: str, out: str, slot: int,
                 scratch_slot: int | None,
                 weight: np.ndarray, bias: np.ndarray | None,
                 threshold=None):
        self.name = node.name
        self.src = src
        self.out = out
        self.slot = slot
        self.scratch_slot = scratch_slot
        self.weight_t = weight.T
        self.bias = bias
        self.threshold = threshold

    def run(self, env, arena, plan):
        x = env[self.src]
        m = arena.view(self.slot, (x.shape[0], self.weight_t.shape[1]))
        np.matmul(x, self.weight_t, out=m)
        if self.bias is not None:
            m += self.bias
        if self.threshold is not None:
            t0 = time.perf_counter()
            scratch = None if self.scratch_slot is None \
                else arena.view(self.scratch_slot, m.shape)
            _threshold_matrix(m, *self.threshold, scratch=scratch)
            plan.threshold_seconds += time.perf_counter() - t0
        env[self.out] = m


class _ThresholdStep(_Step):
    """Standalone MultiThreshold over an NCHW/NC activation."""

    def __init__(self, node: IRNode, src: str, out: str, slot: int,
                 threshold):
        self.name = node.name
        self.src = src
        self.out = out
        self.slot = slot
        self.threshold = threshold

    def run(self, env, arena, plan):
        x = env[self.src]
        dst = arena.view(self.slot, x.shape)
        t0 = time.perf_counter()
        _threshold_tensor(x, *self.threshold, out=dst)
        plan.threshold_seconds += time.perf_counter() - t0
        env[self.out] = dst


class _BatchNormStep(_Step):
    """Unfoldable BatchNorm, executed with the reference arithmetic."""

    def __init__(self, node: IRNode, src: str, out: str, slot: int, dtype,
                 keep=None):
        self.name = node.name
        self.src = src
        self.out = out
        self.slot = slot
        self.scale = node.initializers["scale"].astype(dtype, copy=False)
        self.shift = node.initializers["shift"].astype(dtype, copy=False)
        if keep is not None:  # sparse mode: channel-compacted input
            self.scale = self.scale[keep]
            self.shift = self.shift[keep]

    def run(self, env, arena, plan):
        x = env[self.src]
        dst = arena.view(self.slot, x.shape)
        if x.ndim == 4:
            np.multiply(x, self.scale.reshape(1, -1, 1, 1), out=dst)
            dst += self.shift.reshape(1, -1, 1, 1)
        else:
            np.multiply(x, self.scale, out=dst)
            dst += self.shift
        env[self.out] = dst


class _MaxPoolStep(_Step):
    def __init__(self, node: IRNode, src: str, out: str):
        self.name = node.name
        self.src = src
        self.out = out
        self.kernel = node.attrs["kernel"]
        self.stride = node.attrs.get("stride") or self.kernel

    def run(self, env, arena, plan):
        from ..nn.functional import maxpool2d_forward
        env[self.out] = maxpool2d_forward(env[self.src], self.kernel,
                                          self.stride)[0]


class _FlattenStep(_Step):
    """Flatten into its own slot.

    Always copies: aliasing the (possibly arena-backed) input would keep
    the source slot live past what the compile-time liveness scan
    assumed.  The copy also linearizes the conv path's transposed NCHW
    view, so the downstream GEMM sees a contiguous operand exactly like
    the reference executor's ``reshape``.
    """

    def __init__(self, node: IRNode, src: str, out: str, slot: int):
        self.name = node.name
        self.src = src
        self.out = out
        self.slot = slot

    def run(self, env, arena, plan):
        x = env[self.src]
        n = x.shape[0]
        dst = arena.view(self.slot, (n, x.size // n))
        np.copyto(dst.reshape(x.shape), x)
        env[self.out] = dst


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------

def _compact(node: IRNode, weight: np.ndarray, bias: np.ndarray | None,
             threshold, in_keep: np.ndarray | None, out_keep: dict):
    """Apply sparse-mode channel compaction to one GEMM's operands.

    ``in_keep`` slices the K dimension (input columns: Conv in-channels,
    MatMul columns); ``out_keep[node.name]`` slices the N dimension (own
    output rows, plus bias and fused-threshold rows).
    """
    if in_keep is not None:
        weight = weight[:, in_keep]
    keep = out_keep.get(node.name)
    if keep is not None:
        weight = weight[keep]
        if bias is not None:
            bias = bias[keep]
        if threshold is not None:
            v, signs, step = threshold
            threshold = (np.ascontiguousarray(v[keep]), signs[keep], step)
    return weight, bias, threshold


def _fold_batchnorm(node: IRNode, weight: np.ndarray,
                    bias: np.ndarray | None, dtype):
    """Fold a BatchNorm affine into Conv/MatMul weight+bias."""
    scale = node.initializers["scale"].astype(dtype, copy=False)
    shift = node.initializers["shift"].astype(dtype, copy=False)
    if weight.ndim == 4:
        weight = weight * scale.reshape(-1, 1, 1, 1)
    else:
        weight = weight * scale.reshape(-1, 1)
    bias = shift if bias is None else bias * scale + shift
    return weight, bias


class _SlotAllocator:
    """Compile-time register allocation over arena slots."""

    def __init__(self, reads: dict, pinned: set):
        self.reads = dict(reads)
        self.pinned = pinned
        self.owner: dict[str, int] = {}  # live tensor -> slot
        self.free: list[int] = []
        self.count = 0

    def acquire(self, tensor: str) -> int:
        slot = self.free.pop() if self.free else self.count
        if slot == self.count:
            self.count += 1
        self.owner[tensor] = slot
        return slot

    def scratch(self) -> int:
        """A slot alive only within one step."""
        slot = self.free.pop() if self.free else self.count
        if slot == self.count:
            self.count += 1
        self.free.append(slot)
        return slot

    def consume(self, tensor: str) -> None:
        """Record one read; free the slot when the tensor dies."""
        if tensor not in self.reads:
            return
        self.reads[tensor] -= 1
        if self.reads[tensor] <= 0 and tensor not in self.pinned:
            slot = self.owner.pop(tensor, None)
            if slot is not None:
                self.free.append(slot)


def compile_graph(graph: IRGraph, dtype=np.float64,
                  timer=None, sparse: bool = False) -> "ExecutionPlan":
    """Compile an :class:`IRGraph` into a fused :class:`ExecutionPlan`.

    ``dtype`` selects the compute precision (``float64`` default keeps
    the plan bit-identical to the reference executors on streamlined
    graphs). ``timer`` is an optional
    :class:`repro.core.instrument.PhaseTimer`; compilation is recorded
    under ``engine_compile`` and attached to the plan for runtime phases.

    ``sparse=True`` enables compile-time **dead-channel elimination** for
    channel-pruned (masked) graphs: an output channel of a Conv/MatMul is
    removed from the fused GEMM when (a) its weight row and bias are
    exactly zero and (b) it provably influences nothing downstream —
    every consumer either reads it through all-zero weight columns or
    passes it through per-channel ops (MaxPool/MultiThreshold/BatchNorm/
    Flatten) into consumers that do, and it never reaches a graph output.
    Both the GEMM's N dimension (its own rows) and every downstream
    GEMM's K dimension (input columns) shrink; all compaction happens
    here at compile time — the runtime steps are the ordinary dense
    steps over smaller matrices, with no gather/scatter.

    Numerical contract of sparse mode: the sparse plan of a masked graph
    is **bit-identical** to the dense plan (and the reference executors)
    of the same graph with the dropped channels explicitly sliced out via
    :func:`repro.ir.passes.slice_channels` — both execute literally the
    same BLAS calls on the same operands. Against the dense plan of the
    *unsliced* masked graph it is numerically equivalent but not bitwise:
    shrinking the K dimension changes BLAS reduction order, perturbing
    the surviving terms' rounding at the ulp level.
    """
    t0 = time.perf_counter()
    dtype = np.dtype(dtype)
    graph.validate()
    order = graph.topological_order()
    producer = {t: n for n in graph.nodes for t in n.outputs}

    # Pass 1: fold BatchNorm nodes whose producer is a single-consumer
    # Conv/MatMul.  ``resolve`` maps original tensor names to the tensor
    # that actually carries the value in the compiled plan.
    resolve: dict[str, str] = {}

    def _r(t: str) -> str:
        while t in resolve:
            t = resolve[t]
        return t

    folded: dict[str, IRNode] = {}  # host node name -> folded BN node
    removed: set[str] = set()       # node names absorbed into a host
    for node in order:
        if node.op_type != "BatchNorm":
            continue
        host = producer.get(node.inputs[0])
        if host is None or host.op_type not in ("Conv", "MatMul"):
            continue
        if host.name in folded:
            continue
        out = host.outputs[0]
        if len(graph.consumers(out)) != 1 or out in graph.output_names:
            continue
        folded[host.name] = node
        removed.add(node.name)
        resolve[node.outputs[0]] = out

    # DuplicateStreams emits no runtime work: both outputs alias the
    # input tensor.  Resolving them here keeps the liveness accounting
    # below honest (all branch reads charge the one underlying buffer).
    for node in order:
        if node.op_type == "DuplicateStreams":
            for out in node.outputs:
                resolve[out] = node.inputs[0]

    # Pass 2: fuse MultiThreshold into its producing Conv/MatMul.  The
    # effective producer is found through ``resolve`` so conv->BN->MT
    # chains fuse fully.  A host whose output is multiply consumed (e.g.
    # feeds a DuplicateStreams) or is itself a graph output keeps its
    # pre-threshold value and the MultiThreshold stays standalone.
    pre_pinned = {_r(t) for t in graph.output_names}
    fused: dict[str, IRNode] = {}  # host node name -> fused MT node
    for node in order:
        if node.op_type != "MultiThreshold" or node.name in removed:
            continue
        src = _r(node.inputs[0])
        host = producer.get(src)
        if host is None or host.op_type not in ("Conv", "MatMul"):
            continue
        if host.name in fused or host.name in removed:
            continue
        live_consumers = [c for c in graph.nodes
                          if c.name not in removed
                          and any(_r(t) == src for t in c.inputs)]
        if len(live_consumers) != 1 or src in pre_pinned:
            continue
        fused[host.name] = node
        removed.add(node.name)
        resolve[node.outputs[0]] = src

    # Liveness: reads per resolved tensor (graph outputs pinned so their
    # slots survive until the end of the run).
    pinned = {_r(t) for t in graph.output_names}

    # Pass 3 (sparse mode): dead-channel elimination. ``out_keep`` maps a
    # Conv/MatMul node name to the output channels it keeps; ``in_keep_of``
    # maps a resolved tensor to the original channel (or flat feature)
    # indices still flowing through it, used to slice consumers.
    out_keep: dict[str, np.ndarray] = {}
    in_keep_of: dict[str, np.ndarray] = {}
    dropped_channels = 0
    if sparse:
        eff_nodes = [n for n in order if n.name not in removed
                     and n.op_type != "DuplicateStreams"]
        consumers_eff: dict[str, list[IRNode]] = {}
        for n in eff_nodes:
            for t in n.inputs:
                consumers_eff.setdefault(_r(t), []).append(n)

        drop_cache: dict[str, np.ndarray] = {}

        def _droppable(tensor: str) -> np.ndarray:
            """Bool per channel of ``tensor``: True iff zeroing it out
            cannot change any graph output (all consumer weight columns
            are zero, transitively through per-channel ops)."""
            if tensor in drop_cache:
                return drop_cache[tensor]
            n_ch = graph.tensors[tensor].shape[0]
            mask = np.ones(n_ch, dtype=bool)
            if tensor in pinned:
                mask[:] = False
            else:
                consumers = consumers_eff.get(tensor, [])
                if not consumers:
                    mask[:] = False  # dangling: leave untouched
                for c in consumers:
                    if c.op_type == "Conv":
                        w = c.initializers["weight"]
                        if w.shape[1] != n_ch:
                            mask[:] = False
                        else:
                            mask &= ~(w != 0).any(axis=(0, 2, 3))
                    elif c.op_type == "MatMul":
                        w = c.initializers["weight"]
                        if w.shape[1] != n_ch:
                            mask[:] = False
                        else:
                            mask &= ~(w != 0).any(axis=0)
                    elif c.op_type in ("MaxPool", "MultiThreshold",
                                       "BatchNorm"):
                        mask &= _droppable(_r(c.outputs[0]))
                    elif c.op_type == "Flatten":
                        flat = _droppable(_r(c.outputs[0]))
                        shape = graph.tensors[c.inputs[0]].shape
                        hw = int(np.prod(shape[1:])) if len(shape) > 1 else 1
                        mask &= flat.reshape(n_ch, hw).all(axis=1)
                    else:
                        mask[:] = False
            drop_cache[tensor] = mask
            return mask

        for node in eff_nodes:
            if node.op_type not in ("Conv", "MatMul"):
                continue
            w = node.initializers["weight"]
            rows = w.shape[0]
            row_zero = ~(w.reshape(rows, -1) != 0).any(axis=1)
            bias = node.initializers.get("bias")
            if bias is not None:
                row_zero &= bias == 0
            if node.name in folded:
                # Folding a BatchNorm adds its shift to the bias; a dead
                # row must stay dead after folding.
                row_zero &= folded[node.name].initializers["shift"] == 0
            if not row_zero.any():
                continue
            dead = row_zero & _droppable(_r(node.outputs[0]))
            keep_idx = np.flatnonzero(~dead)
            if 0 < keep_idx.size < rows:
                out_keep[node.name] = keep_idx
                in_keep_of[_r(node.outputs[0])] = keep_idx
                dropped_channels += rows - keep_idx.size

        # Propagate kept-channel sets forward through per-channel ops so
        # downstream GEMMs and threshold/BN params can be sliced.
        for node in eff_nodes:
            src_keep = in_keep_of.get(_r(node.inputs[0])) if node.inputs \
                else None
            if src_keep is None:
                continue
            if node.op_type in ("MaxPool", "MultiThreshold", "BatchNorm"):
                in_keep_of[_r(node.outputs[0])] = src_keep
            elif node.op_type == "Flatten":
                shape = graph.tensors[node.inputs[0]].shape
                hw = int(np.prod(shape[1:])) if len(shape) > 1 else 1
                in_keep_of[_r(node.outputs[0])] = \
                    (src_keep[:, None] * hw + np.arange(hw)).ravel()

    reads: dict[str, int] = {}
    for node in order:
        if node.name in removed or node.op_type == "DuplicateStreams":
            continue
        for t in node.inputs:
            rt = _r(t)
            reads[rt] = reads.get(rt, 0) + 1
    alloc = _SlotAllocator(reads, pinned)

    steps: list[_Step] = []
    stats = {"nodes": 0, "folded_batchnorm": len(folded),
             "fused_thresholds": len(fused), "sparse": bool(sparse)}
    if sparse:
        stats["compacted_nodes"] = len(out_keep)
        stats["dropped_channels"] = dropped_channels
        stats["channel_keep"] = {name: [int(i) for i in idx]
                                 for name, idx in out_keep.items()}
    aliases: list[tuple[str, str]] = []  # DuplicateStreams rewires
    for node in order:
        if node.name in removed:
            continue
        if node.op_type == "DuplicateStreams":
            continue
        stats["nodes"] += 1
        src = _r(node.inputs[0])
        out = node.outputs[0]
        in_k = in_keep_of.get(src)
        if node.op_type == "Conv":
            weight = node.initializers["weight"].astype(dtype, copy=False)
            bias = node.initializers.get("bias")
            if bias is not None:
                bias = bias.astype(dtype, copy=False)
            if node.name in folded:
                weight, bias = _fold_batchnorm(folded[node.name], weight,
                                               bias, dtype)
            threshold = None
            if node.name in fused:
                threshold = _prepare_thresholds(fused[node.name], dtype)
            weight, bias, threshold = _compact(node, weight, bias, threshold,
                                               in_k, out_keep)
            # Acquire the output slot before the scratch slot: scratch
            # re-frees itself immediately, and the GEMM must never write
            # into the im2col matrix it is reading.
            slot = alloc.acquire(out)
            cols_slot = alloc.scratch()
            steps.append(_ConvStep(node, src, out, dtype, slot, cols_slot,
                                   np.ascontiguousarray(weight), bias,
                                   threshold))
        elif node.op_type == "MatMul":
            weight = node.initializers["weight"].astype(dtype, copy=False)
            bias = node.initializers.get("bias")
            if bias is not None:
                bias = bias.astype(dtype, copy=False)
            if node.name in folded:
                weight, bias = _fold_batchnorm(folded[node.name], weight,
                                               bias, dtype)
            threshold = None
            scratch_slot = None
            if node.name in fused:
                threshold = _prepare_thresholds(fused[node.name], dtype)
            weight, bias, threshold = _compact(node, weight, bias, threshold,
                                               in_k, out_keep)
            slot = alloc.acquire(out)
            if threshold is not None:
                scratch_slot = alloc.scratch()
            steps.append(_MatMulStep(node, src, out, slot, scratch_slot,
                                     np.ascontiguousarray(weight), bias,
                                     threshold))
        elif node.op_type == "MultiThreshold":
            slot = alloc.acquire(out)
            threshold = _prepare_thresholds(node, dtype)
            if in_k is not None:
                v, signs, step = threshold
                threshold = (np.ascontiguousarray(v[in_k]), signs[in_k], step)
            steps.append(_ThresholdStep(node, src, out, slot, threshold))
        elif node.op_type == "BatchNorm":
            slot = alloc.acquire(out)
            steps.append(_BatchNormStep(node, src, out, slot, dtype,
                                        keep=in_k))
        elif node.op_type == "MaxPool":
            steps.append(_MaxPoolStep(node, src, out))
        elif node.op_type == "Flatten":
            slot = alloc.acquire(out)
            steps.append(_FlattenStep(node, src, out, slot))
        else:  # pragma: no cover - _VALID_OPS guards this
            raise ValueError(f"cannot compile op {node.op_type!r}")
        alloc.consume(src)

    plan = ExecutionPlan(
        graph_name=graph.name,
        input_name=graph.input_name,
        output_names=[_r(t) for t in graph.output_names],
        steps=steps,
        num_slots=alloc.count,
        dtype=dtype,
        num_exits=int(graph.metadata.get("num_exits", 0)),
        stats=stats,
        timer=timer,
    )
    if timer is not None:
        timer.add("engine_compile", time.perf_counter() - t0)
    return plan


class ExecutionPlan:
    """A compiled, reusable forward pass over an exported model.

    Duck-type compatible with :class:`repro.nn.BranchedModel` for the
    evaluation helpers: ``forward(x)`` returns one logits array per graph
    output (early exits first, backbone last), ``eval()`` is a no-op, and
    ``num_exits``/``param_dtype`` report the model facts the helpers use.
    """

    def __init__(self, graph_name, input_name, output_names, steps,
                 num_slots, dtype, num_exits, stats, timer=None):
        self.graph_name = graph_name
        self.input_name = input_name
        self.output_names = output_names
        self.steps = steps
        self.dtype = dtype
        self._num_exits = num_exits
        self._stats = stats
        self.timer = timer
        self.threshold_seconds = 0.0
        self._arena = _Arena(num_slots, dtype)

    # -- model duck-typing -------------------------------------------------
    @property
    def num_exits(self) -> int:
        return self._num_exits

    @property
    def param_dtype(self):
        return self.dtype

    def eval(self) -> "ExecutionPlan":
        return self

    def train(self) -> "ExecutionPlan":  # pragma: no cover - defensive
        raise RuntimeError("compiled plans are inference-only")

    # -- execution ---------------------------------------------------------
    def run(self, x: np.ndarray) -> list[np.ndarray]:
        """Run one batch; returns one freshly-owned array per output."""
        t0 = time.perf_counter()
        x = np.asarray(x, dtype=self.dtype)
        env = {self.input_name: x}
        arena = self._arena
        for step in self.steps:
            step.run(env, arena, self)
        # Outputs must survive the next run's buffer reuse.
        outs = [env[t].copy() for t in self.output_names]
        if self.timer is not None:
            elapsed = time.perf_counter() - t0
            self.timer.add("engine_forward", elapsed)
            if self.threshold_seconds:
                self.timer.add("engine_threshold", self.threshold_seconds)
                self.threshold_seconds = 0.0
        return outs

    forward = run

    def run_many(self, xs) -> list[list[np.ndarray]]:
        """Run several inputs through one fused invocation.

        The serving-side analogue of micro-batched admission
        (:mod:`repro.edge.server`): the inputs are stacked along the
        batch axis, pushed through the plan once — amortizing the
        per-invocation step dispatch over the whole batch — and the
        outputs are split back per input (one freshly-owned array per
        output). Every step in a plan is batch-elementwise, so
        ``result[i]`` is exactly the ``xs[i]`` rows of the stacked run;
        it matches a standalone ``self.run(xs[i])`` to the last ulp
        (BLAS reduction order inside matmul may differ with the batch
        size, so bit-identity to per-input runs is not guaranteed).
        """
        xs = [np.asarray(x, dtype=self.dtype) for x in xs]
        if not xs:
            return []
        sizes = [x.shape[0] for x in xs]
        stacked = np.concatenate(xs, axis=0)
        outs = self.run(stacked)
        bounds = np.cumsum(sizes[:-1])
        per_output = [np.split(o, bounds, axis=0) for o in outs]
        return [[piece[i].copy() for piece in per_output]
                for i in range(len(xs))]

    def stats(self) -> dict:
        """Fusion/fold counts and arena footprint of the compiled plan."""
        return dict(self._stats, num_steps=len(self.steps),
                    arena_bytes=self._arena.nbytes(),
                    dtype=str(np.dtype(self.dtype)))
