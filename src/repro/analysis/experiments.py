"""Per-figure/table experiment drivers.

Each function regenerates the data behind one artifact of the paper's
evaluation from a built Library (and, for the edge experiments, from
edge-serving simulations). The benchmark harness in ``benchmarks/`` calls
these and prints the resulting rows/series; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.adapex import AdaPExFramework
from ..edge.cameras import WorkloadSpec
from ..edge.server import ServerConfig, simulate_policy
from ..runtime.library import Library

__all__ = [
    "fig1_tradeoff",
    "fig4_design_space",
    "fig5_accuracy_latency",
    "fig5_resources",
    "table1_rows",
    "fig6_qoe_edp",
    "reconfiguration_ablation",
    "pareto_frontier",
]


def pareto_frontier(rows: list, x_key: str, y_key: str = "accuracy",
                    maximize_x: bool = True) -> list:
    """Rows on the (x, y)-maximal frontier, sorted by ``x``.

    A row is on the frontier when no other row is at least as good in
    both coordinates and strictly better in one. Used to summarize the
    Fig. 4 design space ("who wins at each throughput/energy level").
    """
    if not rows:
        return []

    def x_of(r):
        return r[x_key] if maximize_x else -r[x_key]

    ordered = sorted(rows, key=lambda r: (x_of(r), r[y_key]))
    frontier = []
    best_y = -np.inf
    for row in reversed(ordered):
        if row[y_key] > best_y:
            frontier.append(row)
            best_y = row[y_key]
    return list(reversed(frontier))


def _ee_entries(library: Library, pruned_exits: bool = True):
    return [e for e in library
            if e.accelerator.variant == "ee"
            and e.accelerator.pruned_exits == pruned_exits]


def _backbone_entries(library: Library):
    return [e for e in library if e.accelerator.variant == "backbone"]


def _closest(entries, ct: float):
    return min(entries, key=lambda e: abs(e.confidence_threshold - ct))


def fig1_tradeoff(library: Library, thresholds=(0.05, 0.50, 0.95),
                  pruned_exits: bool = False) -> list:
    """Figure 1: accuracy (a) and energy per inference (b) vs pruning rate
    for the no-early-exit CNN and the early-exit CNN at several
    confidence thresholds.

    Defaults to the *not-pruned-exits* variant: the accuracy crossover
    the paper highlights (low thresholds going from worst to best as
    pruning deepens) lives in the regime where exit heads keep their
    capacity while the backbone shrinks.
    """
    rows = []
    rates = sorted({e.accelerator.pruning_rate for e in library})
    ee = _ee_entries(library, pruned_exits=pruned_exits)
    backbone = _backbone_entries(library)
    for rate in rates:
        row = {"pruning_rate": rate}
        bb = [e for e in backbone if e.accelerator.pruning_rate == rate]
        if bb:
            row["no_ee_accuracy"] = bb[0].accuracy
            row["no_ee_energy_mj"] = bb[0].energy_per_inference_j * 1e3
        at_rate = [e for e in ee if e.accelerator.pruning_rate == rate]
        for ct in thresholds:
            if not at_rate:
                continue
            entry = _closest(at_rate, ct)
            tag = f"ct{int(round(ct * 100)):02d}"
            row[f"{tag}_accuracy"] = entry.accuracy
            row[f"{tag}_energy_mj"] = entry.energy_per_inference_j * 1e3
        rows.append(row)
    return rows


def fig4_design_space(library: Library) -> list:
    """Figure 4: the full (P.R., C.T.) design space as scatter rows —
    throughput (IPS) and energy per inference vs accuracy, for pruned and
    not-pruned exits."""
    rows = []
    for pruned in (True, False):
        for e in _ee_entries(library, pruned_exits=pruned):
            rows.append({
                "pruning_rate": e.accelerator.pruning_rate,
                "confidence_threshold": e.confidence_threshold,
                "pruned_exits": pruned,
                "accuracy": e.accuracy,
                "ips": e.serving_ips,
                "energy_mj": e.energy_per_inference_j * 1e3,
            })
    return rows


def fig5_accuracy_latency(library: Library,
                          thresholds=(0.05, 0.25, 0.50, 0.75)) -> list:
    """Figure 5(a-d): accuracy and latency vs pruning rate, pruned vs
    not-pruned exits, at four confidence thresholds."""
    rows = []
    rates = sorted({e.accelerator.pruning_rate
                    for e in library if e.accelerator.variant == "ee"})
    for ct in thresholds:
        for rate in rates:
            row = {"confidence_threshold": ct, "pruning_rate": rate}
            for pruned, tag in ((True, "pruned"), (False, "not_pruned")):
                entries = [e for e in _ee_entries(library, pruned)
                           if e.accelerator.pruning_rate == rate]
                if not entries:
                    continue
                entry = _closest(entries, ct)
                row[f"{tag}_accuracy"] = entry.accuracy
                row[f"{tag}_latency_ms"] = entry.latency_s * 1e3
            rows.append(row)
    return rows


def fig5_resources(library: Library) -> list:
    """Figure 5(e): BRAM/LUT/FF vs pruning rate for pruned and not-pruned
    exits (confidence threshold does not affect hardware)."""
    rows = []
    rates = sorted({e.accelerator.pruning_rate
                    for e in library if e.accelerator.variant == "ee"})
    for rate in rates:
        row = {"pruning_rate": rate}
        for pruned, tag in ((True, "pruned"), (False, "not_pruned")):
            entries = [e for e in _ee_entries(library, pruned)
                       if e.accelerator.pruning_rate == rate]
            if not entries:
                continue
            res = entries[0].resources
            row[f"{tag}_bram"] = res.get("bram18", 0.0)
            row[f"{tag}_lut"] = res.get("lut", 0.0)
            row[f"{tag}_ff"] = res.get("ff", 0.0)
        rows.append(row)
    return rows


_DEFAULT_POLICIES = ("adapex", "pr-only", "ct-only", "finn")


def table1_rows(frameworks: dict[str, AdaPExFramework], runs: int = 20,
                workload: WorkloadSpec | None = None,
                server: ServerConfig | None = None,
                policies=_DEFAULT_POLICIES, base_seed: int = 0) -> list:
    """Table I: inference loss / accuracy / power / latency per policy and
    dataset. ``frameworks`` maps dataset name -> framework with a built
    library."""
    rows = []
    for dataset, framework in frameworks.items():
        results = framework.evaluate_at_edge(
            policies=policies, runs=runs, workload=workload, server=server,
            base_seed=base_seed)
        for name, agg in results.items():
            row = {"policy": name, "dataset": dataset}
            row.update(agg.as_row())
            row.pop("qoe", None)
            row.pop("edp", None)
            rows.append(row)
    # Paper ordering: AdaPEx, PR-Only, CT-Only, FINN.
    order = {"AdaPEx": 0, "PR-Only": 1, "CT-Only": 2, "FINN": 3}
    rows.sort(key=lambda r: (order.get(r["policy"], 9), r["dataset"]))
    return rows


def fig6_qoe_edp(frameworks: dict[str, AdaPExFramework], runs: int = 20,
                 workload: WorkloadSpec | None = None,
                 server: ServerConfig | None = None,
                 policies=_DEFAULT_POLICIES, base_seed: int = 0) -> list:
    """Figure 6: QoE and EDP (normalized to FINN) per policy and dataset."""
    rows = []
    for dataset, framework in frameworks.items():
        results = framework.evaluate_at_edge(
            policies=policies, runs=runs, workload=workload, server=server,
            base_seed=base_seed)
        finn_edp = results["FINN"].edp if "FINN" in results else None
        for name, agg in results.items():
            norm = agg.edp / finn_edp if finn_edp else float("nan")
            rows.append({
                "policy": name,
                "dataset": dataset,
                "qoe": agg.qoe,
                "edp_norm_finn": norm,
                "edp_improvement_x": (1.0 / norm) if norm and norm > 0
                else float("nan"),
            })
    return rows


def reconfiguration_ablation(framework: AdaPExFramework, runs: int = 5,
                             workload: WorkloadSpec | None = None,
                             server: ServerConfig | None = None,
                             base_seed: int = 0) -> list:
    """Paper Sec. VI-B anecdote: count reconfigurations and their total
    dead time per run, plus the distinct pruning rates and thresholds the
    manager visited."""
    policy = framework.policy("adapex")
    _, run_list = simulate_policy(policy, runs=runs, workload=workload,
                                  config=server, base_seed=base_seed)
    rows = []
    for i, run in enumerate(run_list):
        trace = run.trace
        rates = sorted(set(trace.get("pruning_rate", [])))
        cts = sorted(set(trace.get("confidence_threshold", [])))
        rows.append({
            "run": i,
            "reconfigurations": run.reconfigurations,
            "dead_time_ms": run.reconfig_dead_time_s * 1e3,
            "distinct_pruning_rates": len(rates),
            "distinct_thresholds": len(cts),
            "inference_loss_pct": 100 * run.inference_loss,
        })
    return rows
