"""The paper's reported numbers, as data.

Used to generate EXPERIMENTS.md-style side-by-side comparisons: the
reproduction is expected to match *shapes* (orderings, ratios,
crossovers), not these absolute values — our substrate is a NumPy
simulator, not the authors' ZCU104 testbed.
"""

from __future__ import annotations

__all__ = ["PAPER_TABLE1", "PAPER_FIG6", "compare_table1", "compare_fig6"]

# Table I: averaged inference loss, accuracy, power, latency (25 s runs).
PAPER_TABLE1 = {
    ("AdaPEx", "cifar10"): {"infer_loss_pct": 0.00, "accuracy_pct": 80.15,
                            "power_w": 1.26, "latency_ms": 3.52},
    ("AdaPEx", "gtsrb"): {"infer_loss_pct": 0.00, "accuracy_pct": 68.80,
                          "power_w": 1.31, "latency_ms": 3.04},
    ("PR-Only", "cifar10"): {"infer_loss_pct": 11.82, "accuracy_pct": 85.72,
                             "power_w": 1.13, "latency_ms": 4.37},
    ("PR-Only", "gtsrb"): {"infer_loss_pct": 0.00, "accuracy_pct": 65.38,
                           "power_w": 1.09, "latency_ms": 3.79},
    ("CT-Only", "cifar10"): {"infer_loss_pct": 12.58, "accuracy_pct": 86.57,
                             "power_w": 1.35, "latency_ms": 4.38},
    ("CT-Only", "gtsrb"): {"infer_loss_pct": 14.01, "accuracy_pct": 66.09,
                           "power_w": 1.37, "latency_ms": 3.63},
    ("FINN", "cifar10"): {"infer_loss_pct": 22.80, "accuracy_pct": 88.74,
                          "power_w": 1.16, "latency_ms": 5.19},
    ("FINN", "gtsrb"): {"infer_loss_pct": 23.60, "accuracy_pct": 70.04,
                        "power_w": 1.14, "latency_ms": 5.21},
}

# Figure 6 headline numbers.
PAPER_FIG6 = {
    "cifar10": {"qoe_gain_over_finn_pct": 11.72, "edp_improvement_x": 2.0},
    "gtsrb": {"qoe_gain_over_finn_pct": 15.27, "edp_improvement_x": 2.55},
}


def compare_table1(measured_rows: list) -> list:
    """Side-by-side paper-vs-measured rows for Table I.

    ``measured_rows`` is the output of
    :func:`repro.analysis.table1_rows` (keys: policy, dataset,
    infer_loss_pct, accuracy_pct, power_w, latency_ms).
    """
    out = []
    for row in measured_rows:
        key = (row["policy"], row["dataset"])
        paper = PAPER_TABLE1.get(key)
        if paper is None:
            continue
        out.append({
            "policy": row["policy"],
            "dataset": row["dataset"],
            "loss_paper": paper["infer_loss_pct"],
            "loss_ours": row["infer_loss_pct"],
            "acc_paper": paper["accuracy_pct"],
            "acc_ours": row["accuracy_pct"],
            "power_paper": paper["power_w"],
            "power_ours": row["power_w"],
            "lat_paper": paper["latency_ms"],
            "lat_ours": row["latency_ms"],
        })
    return out


def compare_fig6(measured_rows: list) -> list:
    """Side-by-side paper-vs-measured for Figure 6's headline ratios.

    ``measured_rows`` is the output of
    :func:`repro.analysis.fig6_qoe_edp`.
    """
    by = {(r["policy"], r["dataset"]): r for r in measured_rows}
    out = []
    for dataset, paper in PAPER_FIG6.items():
        ada = by.get(("AdaPEx", dataset))
        finn = by.get(("FINN", dataset))
        if ada is None or finn is None:
            continue
        qoe_gain = 100.0 * (ada["qoe"] / finn["qoe"] - 1.0) if finn["qoe"] \
            else float("nan")
        out.append({
            "dataset": dataset,
            "qoe_gain_paper_pct": paper["qoe_gain_over_finn_pct"],
            "qoe_gain_ours_pct": qoe_gain,
            "edp_x_paper": paper["edp_improvement_x"],
            "edp_x_ours": ada["edp_improvement_x"],
        })
    return out
