"""Experiment drivers (one per paper figure/table) and result rendering."""

from .experiments import (
    fig1_tradeoff,
    fig4_design_space,
    fig5_accuracy_latency,
    fig5_resources,
    fig6_qoe_edp,
    pareto_frontier,
    reconfiguration_ablation,
    table1_rows,
)
from .paper import PAPER_FIG6, PAPER_TABLE1, compare_fig6, compare_table1
from .report import format_series, format_table, write_csv

__all__ = [
    "fig1_tradeoff", "fig4_design_space", "fig5_accuracy_latency",
    "fig5_resources", "fig6_qoe_edp", "pareto_frontier", "reconfiguration_ablation",
    "table1_rows",
    "PAPER_FIG6", "PAPER_TABLE1", "compare_fig6", "compare_table1",
    "format_series", "format_table", "write_csv",
]
