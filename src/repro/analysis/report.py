"""Plain-text and CSV rendering of experiment results.

Benchmarks print the same rows/series the paper reports; these helpers
keep that formatting in one place.
"""

from __future__ import annotations

import csv
import io

__all__ = ["format_table", "write_csv", "format_series"]


def _fmt(value, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: list, columns: list | None = None,
                 precision: int = 3, title: str | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, ""), precision) for c in columns]
            for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body))
              for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(name: str, xs, ys, precision: int = 3) -> str:
    """One-line rendering of a figure series (x -> y pairs)."""
    pairs = ", ".join(
        f"{_fmt(float(x), precision)}:{_fmt(float(y), precision)}"
        for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def write_csv(rows: list, path, columns: list | None = None) -> None:
    """Write dict rows to a CSV file."""
    if not rows:
        raise ValueError("no rows to write")
    columns = columns or list(rows[0].keys())
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


def rows_to_csv_text(rows: list, columns: list | None = None) -> str:
    """CSV rendering as a string (handy for logs and tests)."""
    if not rows:
        return ""
    columns = columns or list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()
