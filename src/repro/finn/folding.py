"""Folding configuration: PE/SIMD parallelism per layer.

FINN lets the user tune each MVTU's parallelism through a JSON file
("FINN Config." in the paper's Fig. 3): ``PE`` processing elements split
the output channels, ``SIMD`` lanes split the input channels. Folding
determines both performance (cycles shrink with PE*SIMD) and the
dataflow-aware pruning constraints (surviving channel counts must stay
divisible by the folding factors).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..pruning.dataflow import LayerFoldConstraint

__all__ = ["LayerFolding", "FoldingConfig", "auto_fold",
           "cnv_reference_fold", "fold_constraints", "largest_divisor_leq"]


def largest_divisor_leq(n: int, bound: int) -> int:
    """Largest divisor of ``n`` that is <= ``bound`` (at least 1).

    The folding workhorse: PE/SIMD factors must divide their dimension,
    so requested parallelism is rounded down to the nearest divisor.
    Bounds below 1 clamp to 1 (serial folding) rather than erroring.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for d in range(min(n, max(bound, 1)), 0, -1):
        if n % d == 0:
            return d
    return 1


@dataclass(frozen=True)
class LayerFolding:
    """Parallelism of one compute layer (CONV or FC)."""

    pe: int = 1
    simd: int = 1

    def __post_init__(self):
        if self.pe < 1 or self.simd < 1:
            raise ValueError("pe and simd must be >= 1")

    @property
    def parallelism(self) -> int:
        return self.pe * self.simd


@dataclass
class FoldingConfig:
    """Per-layer folding, keyed by the model's layer names.

    Layers not present fall back to ``LayerFolding(1, 1)`` (fully folded,
    slowest, smallest).
    """

    layers: dict = field(default_factory=dict)

    def get(self, layer_name: str) -> LayerFolding:
        return self.layers.get(layer_name, LayerFolding())

    def set(self, layer_name: str, pe: int, simd: int) -> None:
        self.layers[layer_name] = LayerFolding(pe, simd)

    # -- JSON round-trip (the paper's user-facing config format) --------
    def to_json(self) -> str:
        return json.dumps(
            {name: {"PE": f.pe, "SIMD": f.simd}
             for name, f in sorted(self.layers.items())},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FoldingConfig":
        raw = json.loads(text)
        config = cls()
        for name, entry in raw.items():
            config.set(name, int(entry.get("PE", 1)), int(entry.get("SIMD", 1)))
        return config

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path) -> "FoldingConfig":
        with open(path) as f:
            return cls.from_json(f.read())


def _layer_work(layer, out_hw: tuple) -> tuple:
    """(vectors, rows, cols, simd_limit) of a compute layer."""
    from ..nn.layers import Conv2D, Linear

    if isinstance(layer, Conv2D):
        vectors = out_hw[0] * out_hw[1]
        rows = layer.out_channels
        cols = layer.kernel_size ** 2 * layer.in_channels
        return vectors, rows, cols, layer.in_channels
    if isinstance(layer, Linear):
        return 1, layer.out_features, layer.in_features, layer.in_features
    raise TypeError(f"not a compute layer: {layer!r}")


def _fold_for_target(vectors: int, rows: int, cols: int, simd_limit: int,
                     target_cycles: float) -> LayerFolding:
    """Cheapest (pe, simd) whose cycle count meets ``target_cycles``.

    PE must divide rows, SIMD must divide the layer's input channels
    (``simd_limit``; also a divisor of cols). Falls back to maximum
    parallelism when the target is unreachable.
    """
    pe_options = [d for d in range(1, rows + 1) if rows % d == 0]
    simd_options = [d for d in range(1, simd_limit + 1) if simd_limit % d == 0]
    best = None
    for pe in pe_options:
        for simd in simd_options:
            cycles = vectors * (rows // pe) * (cols // simd)
            if cycles <= target_cycles:
                cost = pe * simd
                if best is None or cost < best[0]:
                    best = (cost, pe, simd)
                break  # larger simd only costs more for this pe
    if best is None:
        return LayerFolding(rows, simd_limit)
    return LayerFolding(best[1], best[2])


def auto_fold(model, base_cycles: float | None = None,
              depth_growth: float = 1.35,
              max_parallel: int = 1024) -> FoldingConfig:
    """Derive a FINN-style folding for a :class:`~repro.nn.BranchedModel`.

    FINN's reference CNV folding gives the wide early CONV layers high
    parallelism and folds the deep, weight-heavy layers harder (their PE
    counts are limited by weight-memory ports), so stage cycle budgets
    *grow* with depth. We reproduce that shape: the layer at backbone
    depth ``d`` is folded to ``base_cycles * depth_growth**d`` cycles per
    frame. Exit-branch layers inherit their host block's depth budget, so
    branches never become the pipeline bottleneck.

    ``base_cycles`` defaults to the heaviest layer's work divided by
    ``max_parallel`` — the fastest the pipeline could go if that layer
    received the full parallelism budget.
    """
    from ..nn.layers import Conv2D, Linear

    if depth_growth < 1.0:
        raise ValueError("depth_growth must be >= 1.0")

    # Collect compute layers with their depths and output sizes.
    entries = []  # (layer, depth, out_hw)
    shape = model.input_shape
    depth = 0
    seg_depths = {}
    for si, seg in enumerate(model.segments):
        for layer in seg.layers:
            out_shape = layer.output_shape(shape)
            if isinstance(layer, (Conv2D, Linear)):
                hw = out_shape[1:] if len(out_shape) == 3 else (1, 1)
                entries.append((layer, depth, hw))
                depth += 1
            shape = out_shape
        seg_depths[si] = depth  # depth reached at the end of this segment
    for si, branch in model.exits.items():
        bshape = model.segment_output_shapes()[si]
        bdepth = seg_depths[si]
        for layer in branch.layers:
            out_shape = layer.output_shape(bshape)
            if isinstance(layer, (Conv2D, Linear)):
                hw = out_shape[1:] if len(out_shape) == 3 else (1, 1)
                entries.append((layer, bdepth, hw))
            bshape = out_shape

    if base_cycles is None:
        heaviest = max(
            _layer_work(l, hw)[0] * _layer_work(l, hw)[1] * _layer_work(l, hw)[2]
            for l, _, hw in entries
        )
        base_cycles = max(heaviest / max_parallel, 64.0)

    config = FoldingConfig()
    for layer, d, hw in entries:
        vectors, rows, cols, simd_limit = _layer_work(layer, hw)
        target = base_cycles * depth_growth ** d
        fold = _fold_for_target(vectors, rows, cols, simd_limit, target)
        config.set(layer.name, fold.pe, fold.simd)
    return config


# FINN-examples' reference CNV folding, expressed as fractions of each
# layer's own dimensions: (PE / out_dim, SIMD / in_dim). The absolute
# reference values are CNV-W2A2's published folding (PE/SIMD per layer:
# 16/3, 32/32, 16/32, 16/32, 4/32, 1/32 for the convs; 1/4, 1/8, 5/1 for
# the FCs), which puts the pipeline bottleneck in the deep conv layers —
# the structural property the paper's runtime gains rely on.
_CNV_REFERENCE_FRACTIONS = {
    "b0_conv0": (16 / 64, None),  # first layer: SIMD = in_channels (RGB)
    "b0_conv1": (32 / 64, 32 / 64),
    "b1_conv0": (16 / 128, 32 / 64),
    "b1_conv1": (16 / 128, 32 / 128),
    "b2_conv0": (4 / 256, 32 / 128),
    "b2_conv1": (1 / 256, 32 / 256),
    "fc0": (1 / 512, 4 / 256),
    "fc1": (1 / 512, 8 / 512),
    "fc2": (1 / 2, 1 / 512),
}
# Exit branches reuse the host block's parallelism style; generous values
# keep branches off the critical path (the paper: "neither backbone nor
# exit throughput is undermined").
_CNV_EXIT_FRACTIONS = {
    "conv": (1 / 4, 1 / 4),
    "fc0": (1 / 64, 1 / 32),
    "fc1": (1 / 2, 1 / 64),
}


def _fit_fraction(dim: int, fraction: float | None, minimum: int = 1) -> int:
    """Round ``fraction * dim`` to the nearest divisor of ``dim``."""
    if fraction is None:
        return dim
    want = max(int(round(dim * fraction)), minimum)
    return largest_divisor_leq(dim, want)


def cnv_reference_fold(model) -> FoldingConfig:
    """FINN's reference CNV folding, scaled to the model's actual widths.

    This is the default "user FINN configuration" of the reproduction:
    per-layer PE/SIMD proportional to the published CNV-W2A2 folding, so
    scaled-width models keep the same pipeline shape (front stages fast,
    deep convs the bottleneck) and the same *relative* pruning
    granularities.
    """
    from ..nn.layers import Conv2D, Linear

    config = FoldingConfig()
    for layer in model.backbone_layers():
        fractions = _CNV_REFERENCE_FRACTIONS.get(layer.name)
        if fractions is None:
            continue
        pe_frac, simd_frac = fractions
        if isinstance(layer, Conv2D):
            pe = _fit_fraction(layer.out_channels, pe_frac)
            simd = _fit_fraction(layer.in_channels, simd_frac)
            config.set(layer.name, pe, simd)
        elif isinstance(layer, Linear):
            pe = _fit_fraction(layer.out_features, pe_frac)
            simd = _fit_fraction(layer.in_features, simd_frac)
            config.set(layer.name, pe, simd)
    for branch in model.exits.values():
        for layer in branch.layers:
            suffix = layer.name.rsplit("_", 1)[-1]
            fractions = _CNV_EXIT_FRACTIONS.get(suffix)
            if fractions is None:
                continue
            pe_frac, simd_frac = fractions
            if isinstance(layer, Conv2D):
                config.set(layer.name,
                           _fit_fraction(layer.out_channels, pe_frac),
                           _fit_fraction(layer.in_channels, simd_frac))
            elif isinstance(layer, Linear):
                config.set(layer.name,
                           _fit_fraction(layer.out_features, pe_frac),
                           _fit_fraction(layer.in_features, simd_frac))
    return config


def fold_constraints(model, folding: FoldingConfig) -> dict:
    """Dataflow-aware pruning constraints from a folding configuration.

    For each CONV layer *i*, the constraint is ``(PE_i, SIMD_{i+1})`` where
    layer *i+1* is the next CONV consuming its channels (paper, Sec.
    IV-A2). The consumer of a block's last CONV is the next block's first
    CONV; exit-branch CONVs additionally constrain their host block's
    output. FC consumers impose no channel constraint (their SIMD runs
    over the flattened vector).
    """
    import math

    from ..nn.layers import Conv2D, Linear

    def first_linear_simd(layers) -> int:
        """SIMD of the first FC consuming a conv's flattened channels.

        The paper's constraint covers every consumer MVTU: when the
        block's channels flatten into an FC, that FC's SIMD lanes must
        still divide evenly (requiring SIMD | channels is sufficient for
        any spatial size).
        """
        for layer in layers:
            if isinstance(layer, Conv2D):
                return 0  # another conv consumes the channels first
            if isinstance(layer, Linear):
                return folding.get(layer.name).simd
        return 0

    constraints: dict[str, LayerFoldConstraint] = {}
    # Backbone conv chain in order, remembering which segment each conv
    # closes (a block's last conv also feeds that block's exit, if any).
    chain: list[tuple] = []  # (conv, seg_idx, layer_idx, is_last_in_segment)
    for si, seg in enumerate(model.segments):
        convs = [(li, l) for li, l in enumerate(seg.layers)
                 if isinstance(l, Conv2D)]
        for j, (li, conv) in enumerate(convs):
            chain.append((conv, si, li, j == len(convs) - 1))

    for i, (conv, si, li, is_last) in enumerate(chain):
        pe = folding.get(conv.name).pe
        simd_next = 1
        if i + 1 < len(chain):
            simd_next = folding.get(chain[i + 1][0].name).simd
        else:
            # Last backbone conv: its channels flatten into the first FC.
            fc_simd = first_linear_simd(model.segments[si].layers[li + 1:])
            if fc_simd:
                simd_next = math.lcm(simd_next, fc_simd)
        if is_last and si in model.exits:
            # The exit branch's first CONV also consumes these channels:
            # its SIMD must divide them too.
            first = model.exits[si].layers[0]
            if isinstance(first, Conv2D):
                simd_next = math.lcm(simd_next, folding.get(first.name).simd)
        constraints[conv.name] = LayerFoldConstraint(pe=pe, simd_next=simd_next)

    # Exit convs: constrained by their own PE and the exit FC's SIMD.
    for branch in model.exits.values():
        for layer_idx, layer in enumerate(branch.layers):
            if isinstance(layer, Conv2D):
                fc_simd = first_linear_simd(branch.layers[layer_idx + 1:])
                constraints[layer.name] = LayerFoldConstraint(
                    pe=folding.get(layer.name).pe,
                    simd_next=max(fc_simd, 1))
    return constraints
