"""Latency/throughput model of a compiled dataflow accelerator.

Serving model (documented in DESIGN.md):

* **Latency** to exit *k* is the sum of stage busy-cycles along the path
  to that exit (streaming pipeline fill time).
* **Capacity** follows a pipeline-with-gating queueing model. The branch
  module's FIFO holds the trunk copy of each frame until the host accepts
  or rejects the early exit; on accept the copy is dropped, so stages
  behind a branch are only *visited* by frames that did not exit earlier.
  A stage ``s`` with busy-cycles ``c_s`` visited by a fraction ``v_s`` of
  frames sustains an arrival rate of ``clock / (c_s * v_s)``; the
  accelerator's capacity is the minimum over stages. With a single exit
  this degenerates to FINN's classic ``clock / max_stage_cycles``.

This is how early exit buys throughput and energy on an otherwise
hard-wired dataflow design, and the mechanism behind the paper's CT-Only
and AdaPEx capacity gains.

Zero-skip sparsity composes transparently: when the accelerator was
compiled with ``zero_skip=True`` each MVTU's ``cycles()`` already
reflects its weight density (:func:`repro.finn.hls.zero_skip_factor`),
so :class:`StageLoad.effective_cycles`, ``exit_cycles``,
``capacity_ips`` and everything downstream in the serving stack pick up
the sparsity speedup without further changes here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compile import DataflowAccelerator

__all__ = ["StageLoad", "PerformanceModel"]


@dataclass(frozen=True)
class StageLoad:
    """Visit statistics of one pipeline stage."""

    name: str
    cycles: int
    visit_fraction: float

    @property
    def effective_cycles(self) -> float:
        return self.cycles * self.visit_fraction


class PerformanceModel:
    """Latency/throughput queries for one accelerator."""

    def __init__(self, accel: DataflowAccelerator):
        self.accel = accel
        self._paths = [set(p) for p in accel.exit_paths]

    # ------------------------------------------------------------------
    # exit-path structure
    # ------------------------------------------------------------------
    @property
    def num_exits(self) -> int:
        return self.accel.num_exits

    def exit_latency_s(self, exit_idx: int) -> float:
        return self.accel.exit_latency_s(exit_idx)

    def latencies_s(self) -> list[float]:
        return [self.exit_latency_s(k) for k in range(self.num_exits)]

    def _rates(self, exit_rates) -> np.ndarray:
        rates = np.asarray(exit_rates, dtype=np.float64)
        if rates.shape != (self.num_exits,):
            raise ValueError(
                f"need {self.num_exits} exit rates, got {rates.shape}")
        if rates.min() < -1e-9 or not np.isclose(rates.sum(), 1.0, atol=1e-6):
            raise ValueError("exit rates must form a probability vector")
        return np.clip(rates, 0.0, 1.0)

    def stage_visit_fractions(self, exit_rates) -> dict[int, float]:
        """Fraction of frames visiting each module index.

        Stages new to exit k's path (not on any earlier exit's path) are
        visited only by frames that survived all earlier exits.
        """
        rates = self._rates(exit_rates)
        fractions: dict[int, float] = {}
        seen: set[int] = set()
        survival = 1.0
        for k in range(self.num_exits):
            new_stages = self._paths[k] - seen
            for idx in new_stages:
                fractions[idx] = survival
            seen |= self._paths[k]
            survival -= rates[k]
            survival = max(survival, 0.0)
        return fractions

    def stage_loads(self, exit_rates) -> list[StageLoad]:
        fractions = self.stage_visit_fractions(exit_rates)
        return [
            StageLoad(self.accel.modules[i].name,
                      self.accel.modules[i].cycles(), frac)
            for i, frac in sorted(fractions.items())
        ]

    # ------------------------------------------------------------------
    # headline quantities
    # ------------------------------------------------------------------
    def average_latency_s(self, exit_rates) -> float:
        rates = self._rates(exit_rates)
        return float(sum(r * self.exit_latency_s(k)
                         for k, r in enumerate(rates)))

    def capacity_ips(self, exit_rates) -> float:
        """Sustainable inference rate under the gated-pipeline model."""
        loads = self.stage_loads(exit_rates)
        busiest = max((l.effective_cycles for l in loads), default=1.0)
        if busiest <= 0:
            return float("inf")
        return self.accel.clock_hz / busiest

    def serving_capacity_ips(self, exit_rates, inflight: int = 1) -> float:
        """Capacity under the paper's request-response host loop.

        The FINN host code sends an input and collects the result before
        issuing the next (``inflight`` buffered frames at most), so serving
        is latency-bound: ``inflight / average_latency``, additionally
        capped by the physical pipeline capacity. This is the figure the
        Runtime Manager compares against the incoming workload.
        """
        if inflight < 1:
            raise ValueError("inflight must be >= 1")
        avg_lat = self.average_latency_s(exit_rates)
        latency_bound = inflight / avg_lat if avg_lat > 0 else float("inf")
        return min(latency_bound, self.capacity_ips(exit_rates))

    def utilization(self, exit_rates, arrival_ips: float) -> float:
        """Busy fraction of the bottleneck stage at a given arrival rate."""
        cap = self.capacity_ips(exit_rates)
        return min(arrival_ips / cap, 1.0) if cap > 0 else 1.0
