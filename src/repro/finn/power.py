"""Power and energy model.

Total power splits into a static part (device leakage plus PS/board
overhead; present whenever the bitstream is loaded) and a dynamic part
proportional to the toggling resources of each pipeline stage, scaled by
how often that stage is busy. Coefficients are calibrated so that the
unpruned CNV design lands in the paper's reported band (~1.1-1.4 W on the
ZCU104) and so the structural trends hold: exit circuitry adds ~16-20 %
power, pruning removes dynamic power roughly in proportion to the pruned
resources.

Energy per inference integrates stage energies along the taken exit
paths: a frame that exits early never toggles the gated deep stages, so
lowering the confidence threshold saves energy on easy inputs — the
Figure 1(b)/4 trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from .compile import DataflowAccelerator
from .performance import PerformanceModel
from .resources import ResourceEstimate

__all__ = ["PowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Power/energy figures for one accelerator at one operating point."""

    static_w: float
    dynamic_w: float
    energy_per_inference_j: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w


@dataclass(frozen=True)
class PowerModel:
    """Resource-proportional power model.

    Coefficients are per-resource dynamic power at 100 MHz and full
    activity; dynamic power scales linearly with clock.
    """

    static_base_w: float = 0.62
    lut_w: float = 4.5e-5
    ff_w: float = 6.0e-6
    bram18_w: float = 5.5e-3
    dsp_w: float = 5.0e-3
    reference_clock_mhz: float = 100.0

    def stage_dynamic_w(self, res: ResourceEstimate, clock_mhz: float) -> float:
        """Dynamic power of one always-busy stage."""
        scale = clock_mhz / self.reference_clock_mhz
        return scale * (self.lut_w * res.lut + self.ff_w * res.ff
                        + self.bram18_w * res.bram18 + self.dsp_w * res.dsp)

    def static_w(self, res: ResourceEstimate) -> float:
        """Static power grows weakly with the occupied fabric."""
        return self.static_base_w + 0.05 * self.stage_dynamic_w(
            res, self.reference_clock_mhz)

    # ------------------------------------------------------------------
    # accelerator-level queries
    # ------------------------------------------------------------------
    def average_power_w(self, accel: DataflowAccelerator, exit_rates,
                        arrival_ips: float) -> float:
        """Mean board power while serving ``arrival_ips`` inferences/s.

        Each stage's busy fraction is ``arrival * visits * cycles / clock``
        (capped at 1); idle stages still clock but toggle ~10 % as much.
        """
        perf = PerformanceModel(accel)
        fractions = perf.stage_visit_fractions(exit_rates)
        total_res = accel.resources()
        power = self.static_w(total_res)
        idle_activity = 0.10
        for idx, module in enumerate(accel.modules):
            visit = fractions.get(idx, 0.0)
            busy = min(arrival_ips * visit * module.cycles() / accel.clock_hz,
                       1.0)
            activity = idle_activity + (1.0 - idle_activity) * busy
            power += activity * self.stage_dynamic_w(module.resources(),
                                                     accel.clock_mhz)
        return power

    def energy_per_inference_j(self, accel: DataflowAccelerator,
                               exit_rates) -> float:
        """Average energy one inference consumes (dynamic + static share).

        The static share assumes back-to-back serving: static power is
        paid for the average service latency of a frame.
        """
        perf = PerformanceModel(accel)
        fractions = perf.stage_visit_fractions(exit_rates)
        dynamic_j = 0.0
        for idx, module in enumerate(accel.modules):
            visit = fractions.get(idx, 0.0)
            busy_s = module.cycles() / accel.clock_hz
            dynamic_j += visit * busy_s * self.stage_dynamic_w(
                module.resources(), accel.clock_mhz)
        static_j = self.static_w(accel.resources()) \
            * perf.average_latency_s(exit_rates)
        return dynamic_j + static_j

    def report(self, accel: DataflowAccelerator, exit_rates,
               arrival_ips: float) -> PowerReport:
        static = self.static_w(accel.resources())
        total = self.average_power_w(accel, exit_rates, arrival_ips)
        return PowerReport(
            static_w=static,
            dynamic_w=total - static,
            energy_per_inference_j=self.energy_per_inference_j(accel,
                                                               exit_rates),
        )
