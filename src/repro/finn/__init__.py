"""FINN-like dataflow compiler and accelerator models.

Maps streamlined IR graphs onto HLS module models (MVTU, SWU, pooling,
the paper's branch module), with analytic resource, performance, and
power models plus the ZCU104 device envelope and bitstream
reconfiguration costs.
"""

from .bitstream import RECONFIG_MS_ZCU104, Bitstream, reconfiguration_time_s
from .compile import CompileError, DataflowAccelerator, compile_accelerator
from .device import PYNQ_Z1, ZCU104, FPGADevice, UtilizationError
from .folding import (
    FoldingConfig,
    LayerFolding,
    auto_fold,
    cnv_reference_fold,
    fold_constraints,
)
from .hls import (
    DuplicateStreamsUnit,
    HLSModule,
    MVTU,
    PoolUnit,
    SlidingWindowUnit,
    ThresholdUnit,
)
from .performance import PerformanceModel, StageLoad
from .power import PowerModel, PowerReport
from .resources import (
    BRAM18_BITS,
    ResourceEstimate,
    bram18_for_bits,
    memory_resources,
)

__all__ = [
    "RECONFIG_MS_ZCU104", "Bitstream", "reconfiguration_time_s",
    "CompileError", "DataflowAccelerator", "compile_accelerator",
    "PYNQ_Z1", "ZCU104", "FPGADevice", "UtilizationError",
    "FoldingConfig", "LayerFolding", "auto_fold", "cnv_reference_fold",
    "fold_constraints",
    "DuplicateStreamsUnit", "HLSModule", "MVTU", "PoolUnit",
    "SlidingWindowUnit", "ThresholdUnit",
    "PerformanceModel", "StageLoad",
    "PowerModel", "PowerReport",
    "BRAM18_BITS", "ResourceEstimate", "bram18_for_bits", "memory_resources",
]
