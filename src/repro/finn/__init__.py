"""FINN-like dataflow compiler and accelerator models.

Maps streamlined IR graphs onto HLS module models (MVTU, SWU, pooling,
the paper's branch module), with analytic resource, performance, and
power models plus the ZCU104 device envelope and bitstream
reconfiguration costs.
"""

from .bitstream import RECONFIG_MS_ZCU104, Bitstream, reconfiguration_time_s
from .compile import CompileError, DataflowAccelerator, compile_accelerator
from .device import PYNQ_Z1, ZCU104, FPGADevice, UtilizationError
from .folding import (
    FoldingConfig,
    LayerFolding,
    auto_fold,
    cnv_reference_fold,
    fold_constraints,
    largest_divisor_leq,
)
from .hls import (
    DuplicateStreamsUnit,
    HLSModule,
    MVTU,
    PoolUnit,
    SlidingWindowUnit,
    ThresholdUnit,
    ZERO_SKIP_OVERHEAD,
    zero_skip_factor,
)
from .performance import PerformanceModel, StageLoad
from .power import PowerModel, PowerReport
from .resources import (
    BRAM18_BITS,
    DSP_OPERAND_BITS,
    DSP_PACK_FACTOR,
    ResourceEstimate,
    bram18_for_bits,
    dsp_for_macs,
    memory_resources,
)
from .sparse import (
    SparseLayerExport,
    SparseModelExport,
    SparseTensor,
    export_sparse_weights,
)

__all__ = [
    "RECONFIG_MS_ZCU104", "Bitstream", "reconfiguration_time_s",
    "CompileError", "DataflowAccelerator", "compile_accelerator",
    "PYNQ_Z1", "ZCU104", "FPGADevice", "UtilizationError",
    "FoldingConfig", "LayerFolding", "auto_fold", "cnv_reference_fold",
    "fold_constraints", "largest_divisor_leq",
    "DuplicateStreamsUnit", "HLSModule", "MVTU", "PoolUnit",
    "SlidingWindowUnit", "ThresholdUnit",
    "ZERO_SKIP_OVERHEAD", "zero_skip_factor",
    "PerformanceModel", "StageLoad",
    "PowerModel", "PowerReport",
    "BRAM18_BITS", "DSP_OPERAND_BITS", "DSP_PACK_FACTOR",
    "ResourceEstimate", "bram18_for_bits", "dsp_for_macs",
    "memory_resources",
    "SparseTensor", "SparseLayerExport", "SparseModelExport",
    "export_sparse_weights",
]
