"""HLS module models: MVTU, SWU, pooling, and the new branch module.

Each class models one FINN HLS building block at the granularity the
paper's evaluation needs: **initiation cycles per frame** (how many clock
cycles the module is busy per inference) and **resource usage**
(LUT/FF/BRAM18). The paper's contribution on the hardware side is the
``DuplicateStreams`` branch module that splits an AXI stream into a
backbone copy and an exit copy, buffering the exit side in FIFOs — the
BRAM overhead that Figure 5(e) measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .resources import (
    ResourceEstimate,
    bram18_for_bits,
    dsp_for_macs,
    memory_resources,
)

__all__ = ["HLSModule", "MVTU", "SlidingWindowUnit", "PoolUnit",
           "DuplicateStreamsUnit", "ThresholdUnit",
           "ZERO_SKIP_OVERHEAD", "zero_skip_factor"]

# Fraction of the dense cycle count a zero-skipping MVTU cannot go
# below: the skip logic still spends control cycles fetching indices and
# realigning the accumulator pipeline. Snippet 1's measurements show MAC
# savings flattening out past ~70% sparsity — exactly the behaviour of a
# ~0.3 control floor.
ZERO_SKIP_OVERHEAD = 0.3


def zero_skip_factor(density: float,
                     overhead: float = ZERO_SKIP_OVERHEAD) -> float:
    """Cycle multiplier of a zero-skipping MAC array at a weight density.

    Skipped zero weights save their MAC issue slots, so cycles scale
    with the non-zero ``density`` — but never below the ``overhead``
    control floor. With the default floor of 0.3, pruning past ~70%
    sparsity yields no further speedup (diminishing returns, Snippet 1).
    Monotone non-decreasing in ``density``; exactly 1.0 for dense
    weights.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= overhead <= 1.0:
        raise ValueError(f"overhead must be in [0, 1], got {overhead}")
    return min(1.0, max(overhead, density))


class HLSModule:
    """Base interface of a dataflow pipeline stage."""

    name: str

    def cycles(self) -> int:
        """Busy cycles per frame (the stage's contribution to latency and
        the lower bound on the pipeline's initiation interval)."""
        raise NotImplementedError

    def resources(self) -> ResourceEstimate:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name}, cycles={self.cycles()})"


@dataclass
class MVTU(HLSModule):
    """Matrix-Vector-Threshold Unit: executes CONV (via SWU) and FC layers.

    Parameters
    ----------
    rows:
        Output dimension MH (= output channels for CONV, out features for FC).
    cols:
        Input dimension MW (= k*k*in_channels for CONV, in features for FC).
    pe, simd:
        Folding factors; ``pe`` must divide ``rows`` and ``simd`` divide
        ``cols`` at construction time (FINN's synthesis requirement).
    vectors:
        Matrix-vector products per frame (= output pixels for CONV, 1 for FC).
    weight_bits, act_bits:
        Operand precisions.
    thresholds:
        Number of threshold levels folded into the unit (0 = raw
        accumulator output, e.g. final logits).
    density:
        Non-zero fraction of the weight matrix. Below 1.0 the unit is a
        *zero-skipping* MVTU: cycles scale by
        :func:`zero_skip_factor(density, zero_skip_overhead)
        <zero_skip_factor>`. The default 1.0 models the classic dense
        FINN datapath.
    zero_skip_overhead:
        Control-cycle floor of the zero-skip datapath (see
        :data:`ZERO_SKIP_OVERHEAD`).
    """

    name: str
    rows: int
    cols: int
    pe: int = 1
    simd: int = 1
    vectors: int = 1
    weight_bits: int = 2
    act_bits: int = 2
    thresholds: int = 0
    density: float = 1.0
    zero_skip_overhead: float = ZERO_SKIP_OVERHEAD

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1 or self.vectors < 1:
            raise ValueError("rows/cols/vectors must be >= 1")
        if self.rows % self.pe:
            raise ValueError(
                f"{self.name}: PE={self.pe} must divide rows={self.rows}")
        if self.cols % self.simd:
            raise ValueError(
                f"{self.name}: SIMD={self.simd} must divide cols={self.cols}")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(
                f"{self.name}: density={self.density} out of [0, 1]")

    # -- performance -----------------------------------------------------
    @property
    def fold(self) -> int:
        """Cycles per matrix-vector product (dense datapath)."""
        return (self.rows // self.pe) * (self.cols // self.simd)

    def cycles(self) -> int:
        dense = self.vectors * self.fold
        if self.density >= 1.0:
            return dense
        factor = zero_skip_factor(self.density, self.zero_skip_overhead)
        return max(int(math.ceil(dense * factor)), 1)

    def macs_per_frame(self) -> int:
        return self.vectors * self.rows * self.cols

    # -- resources ---------------------------------------------------------
    def weight_bits_total(self) -> int:
        return self.rows * self.cols * self.weight_bits

    def resources(self) -> ResourceEstimate:
        # Compute fabric: low-precision MACs synthesize to LUTs
        # (FINN-R: ~1 LUT per bit-product plus accumulate/control per PE).
        # At 8-bit operands the multiplies move to DSP slices, two 8x8
        # products packed per slice (dsp_for_macs); the fabric then only
        # carries operand routing glue.
        dsp = dsp_for_macs(self.pe, self.simd, self.weight_bits,
                           self.act_bits)
        if dsp:
            mac_lut = 4 * self.pe * self.simd
        else:
            mac_lut = self.pe * self.simd \
                * max(self.weight_bits * self.act_bits, 1)
        acc_lut = self.pe * 24
        control_lut = 120
        lut = mac_lut + acc_lut + control_lut
        ff = 0.8 * (mac_lut + acc_lut) + 90
        # Weight memory, partitioned across PEs (each PE streams its rows).
        per_pe_bits = self.weight_bits_total() / self.pe
        wmem = sum(
            (memory_resources(per_pe_bits) for _ in range(self.pe)),
            ResourceEstimate(),
        )
        # Threshold memory: rows * levels entries of ~24-bit accumulators.
        tmem = memory_resources(self.rows * self.thresholds * 24)
        return ResourceEstimate(lut=lut, ff=ff, dsp=dsp) + wmem + tmem


@dataclass
class SlidingWindowUnit(HLSModule):
    """SWU: lowers the input feature map to MVTU-ready windows.

    Buffers ``kernel`` rows of the input image in a line buffer and emits
    k*k*ch window elements per output pixel, ``simd`` channels at a time.
    """

    name: str
    in_channels: int
    in_width: int
    kernel: int
    out_pixels: int
    simd: int = 1
    act_bits: int = 2

    def __post_init__(self):
        if self.in_channels % self.simd:
            raise ValueError(
                f"{self.name}: SIMD={self.simd} must divide "
                f"in_channels={self.in_channels}")

    def cycles(self) -> int:
        window_elems = self.kernel * self.kernel * (self.in_channels // self.simd)
        return self.out_pixels * window_elems

    def resources(self) -> ResourceEstimate:
        # Line buffer: kernel+1 image rows at act_bits precision. FINN's
        # input generators always instantiate BRAM (dual-port access
        # pattern), so at least one block is consumed.
        buffer_bits = (self.kernel + 1) * self.in_width * self.in_channels \
            * self.act_bits
        mem = ResourceEstimate(bram18=max(bram18_for_bits(buffer_bits), 1.0))
        return ResourceEstimate(lut=180 + 8 * self.simd, ff=140) + mem


@dataclass
class PoolUnit(HLSModule):
    """Max-pooling stage (channel-parallel streaming comparator tree)."""

    name: str
    channels: int
    kernel: int
    in_pixels: int
    act_bits: int = 2

    def cycles(self) -> int:
        return self.in_pixels

    def resources(self) -> ResourceEstimate:
        # One comparator per channel plus a row buffer for the window.
        lut = 3 * self.channels * self.act_bits + 60
        row_bits = self.kernel * math.isqrt(max(self.in_pixels, 1)) \
            * self.channels * self.act_bits
        return ResourceEstimate(lut=lut, ff=0.5 * lut) + memory_resources(row_bits)


@dataclass
class DuplicateStreamsUnit(HLSModule):
    """The paper's new HLS branch module.

    Duplicates the incoming AXI stream into two independent streams — one
    continuing down the backbone, one feeding the early exit. Each copy
    is decoupled through a FIFO deep enough to absorb rate mismatch
    between the two consumers (sized to the duplicated feature map), so
    neither backbone nor exit throughput is undermined and no pipeline
    stall can occur. The cost is mainly BRAM for those FIFOs — exactly
    the overhead the paper reports.
    """

    name: str
    channels: int
    pixels: int
    act_bits: int = 2
    # Trunk FIFO holds the duplicated feature map until the host's
    # accept/reject verdict arrives; the exit-side FIFO decouples rates.
    trunk_fifo_fraction: float = 1.0
    exit_fifo_fraction: float = 0.5

    def cycles(self) -> int:
        return self.pixels

    def fifo_bits(self) -> float:
        map_bits = self.pixels * self.channels * self.act_bits
        return map_bits * (self.trunk_fifo_fraction + self.exit_fifo_fraction)

    def resources(self) -> ResourceEstimate:
        # Two FIFOs (backbone copy + exit copy) plus stream control. FIFO
        # primitives occupy whole BRAM18s even when logically shallower.
        map_bits = self.pixels * self.channels * self.act_bits
        trunk = max(bram18_for_bits(map_bits * self.trunk_fifo_fraction), 1.0)
        exit_side = max(bram18_for_bits(map_bits * self.exit_fifo_fraction), 1.0)
        fifos = ResourceEstimate(bram18=trunk + exit_side)
        return ResourceEstimate(lut=90, ff=70) + fifos


@dataclass
class ThresholdUnit(HLSModule):
    """Standalone MultiThreshold stage (when not folded into an MVTU)."""

    name: str
    channels: int
    pixels: int
    levels: int

    def cycles(self) -> int:
        return self.pixels

    def resources(self) -> ResourceEstimate:
        return ResourceEstimate(lut=2 * self.channels * self.levels + 40,
                                ff=self.channels * self.levels) \
            + memory_resources(self.channels * self.levels * 24)
