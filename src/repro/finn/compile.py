"""IR -> dataflow accelerator compilation (the FINN hardware mapping).

Consumes a *streamlined* IR graph (:func:`repro.ir.streamline`) and a
:class:`~repro.finn.folding.FoldingConfig` and produces a
:class:`DataflowAccelerator`: one pipeline stage per mappable node —
CONV becomes SWU + MVTU, FC becomes MVTU, MultiThreshold nodes directly
after a matrix op fold into that MVTU (the "T" in MVTU), MaxPool becomes
a pooling stage, and DuplicateStreams becomes the paper's branch module.

The resulting accelerator knows, per exit, which stages an input must
traverse — the basis of the latency/throughput/energy models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import IRGraph, IRNode
from .folding import FoldingConfig, largest_divisor_leq as _largest_divisor_leq
from .hls import (
    DuplicateStreamsUnit,
    HLSModule,
    MVTU,
    PoolUnit,
    SlidingWindowUnit,
    ThresholdUnit,
    ZERO_SKIP_OVERHEAD,
)
from .resources import ResourceEstimate
from ..core.errors import PermanentError

__all__ = ["DataflowAccelerator", "compile_accelerator", "CompileError"]


class CompileError(PermanentError, ValueError):
    """Raised when a graph cannot be mapped to a dataflow accelerator.

    A :class:`~repro.core.errors.PermanentError`: the same graph fails
    the same way on every attempt, so supervision quarantines the design
    point instead of retrying it.
    """


def _bare_name(node_name: str) -> str:
    """IR node names carry a scope prefix (``seg0/b0_conv0``)."""
    return node_name.split("/")[-1]


@dataclass
class DataflowAccelerator:
    """A compiled dataflow design: stages, connectivity, and exit paths."""

    name: str
    clock_mhz: float
    modules: list = field(default_factory=list)
    # tensor name -> producing module index (for path reconstruction)
    _tensor_producer: dict = field(default_factory=dict)
    # per exit: ordered module indices an input traverses to that exit
    exit_paths: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def num_exits(self) -> int:
        return len(self.exit_paths)

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def module_by_name(self, name: str) -> HLSModule:
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(name)

    # -- aggregates ------------------------------------------------------
    def resources(self) -> ResourceEstimate:
        return sum((m.resources() for m in self.modules), ResourceEstimate())

    def resources_of(self, module_indices) -> ResourceEstimate:
        return sum((self.modules[i].resources() for i in module_indices),
                   ResourceEstimate())

    def exit_modules(self, exit_idx: int) -> list:
        return [self.modules[i] for i in self.exit_paths[exit_idx]]

    def exit_cycles(self, exit_idx: int) -> int:
        """Cycles for one frame to traverse every stage to this exit."""
        return sum(m.cycles() for m in self.exit_modules(exit_idx))

    def exit_latency_s(self, exit_idx: int) -> float:
        return self.exit_cycles(exit_idx) / self.clock_hz

    def bottleneck_cycles(self) -> int:
        """Initiation interval of the full pipeline (slowest stage)."""
        return max(m.cycles() for m in self.modules)

    def pipelined_ips(self) -> float:
        """Steady-state throughput when frames are streamed back to back."""
        return self.clock_hz / self.bottleneck_cycles()

    def branch_overhead_resources(self) -> ResourceEstimate:
        """Resources attributable to exit branches (branch modules plus
        all stages reachable only on exit paths)."""
        final = set(self.exit_paths[-1]) if self.exit_paths else set()
        extra = [i for i in range(len(self.modules)) if i not in final]
        return self.resources_of(extra)


def _exit_rate_vector(rates, num_exits: int) -> np.ndarray:
    rates = np.asarray(rates, dtype=np.float64)
    if rates.shape != (num_exits,):
        raise ValueError(f"need {num_exits} exit rates, got shape {rates.shape}")
    if rates.min() < 0 or not np.isclose(rates.sum(), 1.0):
        raise ValueError("exit rates must be a probability vector")
    return rates


def compile_accelerator(
    graph: IRGraph,
    folding: FoldingConfig | None = None,
    clock_mhz: float = 100.0,
    name: str | None = None,
    zero_skip: bool = False,
    zero_skip_overhead: float = ZERO_SKIP_OVERHEAD,
) -> DataflowAccelerator:
    """Map a streamlined IR graph onto HLS module models.

    With ``zero_skip=True`` every MVTU becomes a zero-skipping unit: its
    cycle count scales with the non-zero density of the layer's actual
    weight initializer, floored at ``zero_skip_overhead`` (see
    :func:`repro.finn.hls.zero_skip_factor`). Opt-in because it changes
    every cycle/throughput figure — quantized W2A2 weights are already
    ~half zeros before any pruning.
    """
    folding = folding or FoldingConfig()
    accel = DataflowAccelerator(name=name or graph.name, clock_mhz=clock_mhz)

    def _density(node: IRNode) -> float:
        if not zero_skip:
            return 1.0
        weight = node.initializers["weight"]
        if weight.size == 0:
            return 1.0
        return float(np.count_nonzero(weight)) / weight.size

    order = graph.topological_order()
    absorbed: set[str] = set()  # MultiThreshold nodes folded into MVTUs
    # alias: tensor equivalences for zero-hardware nodes (Flatten)
    alias: dict[str, str] = {}

    def producer_of(tensor: str):
        t = alias.get(tensor, tensor)
        return accel._tensor_producer.get(t)

    def register(tensors, module_index):
        for t in tensors:
            accel._tensor_producer[t] = module_index

    def maybe_absorb_threshold(node: IRNode) -> tuple[str, int]:
        """If the node's single consumer is MultiThreshold, fold it.

        Returns (output tensor after absorption, threshold levels)."""
        out = node.outputs[0]
        consumers = graph.consumers(out)
        if len(consumers) == 1 and consumers[0].op_type == "MultiThreshold":
            mt = consumers[0]
            absorbed.add(mt.name)
            return mt.outputs[0], mt.initializers["thresholds"].shape[1]
        return out, 0

    for node in order:
        if node.name in absorbed:
            continue
        in_tensor = node.inputs[0]
        in_info = graph.tensors[alias.get(in_tensor, in_tensor)]

        if node.op_type == "Flatten":
            alias[node.outputs[0]] = alias.get(in_tensor, in_tensor)
            continue

        if node.op_type == "Conv":
            c_in, h_in, w_in = graph.tensors[in_tensor].shape
            c_out, h_out, w_out = graph.tensors[node.outputs[0]].shape
            k = node.attrs["kernel"]
            fold = folding.get(_bare_name(node.name))
            simd = _largest_divisor_leq(c_in, fold.simd)
            pe = _largest_divisor_leq(c_out, fold.pe)
            wbits = node.attrs.get("weight_bits", 32)
            out_tensor, levels = maybe_absorb_threshold(node)
            abits_out = graph.tensors[out_tensor].bits
            swu = SlidingWindowUnit(
                name=f"{node.name}.swu", in_channels=c_in, in_width=w_in,
                kernel=k, out_pixels=h_out * w_out, simd=simd,
                act_bits=in_info.bits if in_info.bits <= 8 else 8,
            )
            mvtu = MVTU(
                name=f"{node.name}.mvtu", rows=c_out, cols=k * k * c_in,
                pe=pe, simd=simd, vectors=h_out * w_out,
                weight_bits=wbits,
                act_bits=abits_out if levels else 8,
                thresholds=levels,
                density=_density(node),
                zero_skip_overhead=zero_skip_overhead,
            )
            accel.modules.append(swu)
            accel.modules.append(mvtu)
            idx = len(accel.modules) - 1
            register([out_tensor, node.outputs[0]], idx)

        elif node.op_type == "MatMul":
            in_f = graph.tensors[alias.get(in_tensor, in_tensor)].elements
            out_f = graph.tensors[node.outputs[0]].elements
            fold = folding.get(_bare_name(node.name))
            simd = _largest_divisor_leq(in_f, fold.simd)
            pe = _largest_divisor_leq(out_f, fold.pe)
            out_tensor, levels = maybe_absorb_threshold(node)
            abits_out = graph.tensors[out_tensor].bits
            mvtu = MVTU(
                name=f"{node.name}.mvtu", rows=out_f, cols=in_f,
                pe=pe, simd=simd, vectors=1,
                weight_bits=node.attrs.get("weight_bits", 32),
                act_bits=abits_out if levels else 8,
                thresholds=levels,
                density=_density(node),
                zero_skip_overhead=zero_skip_overhead,
            )
            accel.modules.append(mvtu)
            idx = len(accel.modules) - 1
            register([out_tensor, node.outputs[0]], idx)

        elif node.op_type == "MaxPool":
            c, h, w = graph.tensors[in_tensor].shape
            pool = PoolUnit(
                name=f"{node.name}.pool", channels=c, kernel=node.attrs["kernel"],
                in_pixels=h * w, act_bits=min(in_info.bits, 8),
            )
            accel.modules.append(pool)
            register(node.outputs, len(accel.modules) - 1)

        elif node.op_type == "DuplicateStreams":
            shape = graph.tensors[alias.get(in_tensor, in_tensor)].shape
            c = shape[0]
            px = int(np.prod(shape[1:])) if len(shape) > 1 else 1
            dup = DuplicateStreamsUnit(
                name=f"{node.name}.dup", channels=c, pixels=px,
                act_bits=min(in_info.bits, 8),
            )
            accel.modules.append(dup)
            register(node.outputs, len(accel.modules) - 1)

        elif node.op_type == "MultiThreshold":
            shape = graph.tensors[in_tensor].shape
            c = shape[0]
            px = int(np.prod(shape[1:])) if len(shape) > 1 else 1
            levels = node.initializers["thresholds"].shape[1]
            unit = ThresholdUnit(name=f"{node.name}.thr", channels=c,
                                 pixels=px, levels=levels)
            accel.modules.append(unit)
            register(node.outputs, len(accel.modules) - 1)

        elif node.op_type == "BatchNorm":
            raise CompileError(
                f"unstreamlined BatchNorm {node.name!r}: run "
                "repro.ir.streamline before compiling"
            )
        else:
            raise CompileError(f"unmappable op {node.op_type!r} ({node.name})")

    # Reconstruct per-exit stage paths by walking producers backwards.
    node_of_tensor = {t: n for n in graph.nodes for t in n.outputs}
    for out in graph.output_names:
        path: list[int] = []
        tensor = out
        while True:
            t = alias.get(tensor, tensor)
            idx = accel._tensor_producer.get(t)
            node = node_of_tensor.get(t)
            if idx is not None and (not path or path[-1] != idx):
                # A Conv contributes two stages (SWU before MVTU).
                if isinstance(accel.modules[idx], MVTU) and idx > 0 and \
                        isinstance(accel.modules[idx - 1], SlidingWindowUnit) \
                        and accel.modules[idx - 1].name.startswith(
                            accel.modules[idx].name.rsplit(".", 1)[0]):
                    path.extend([idx, idx - 1])
                else:
                    path.append(idx)
            if node is None:
                break
            tensor = node.inputs[0]
            if alias.get(tensor, tensor) == graph.input_name:
                break
        accel.exit_paths.append(sorted(set(path)))

    accel.metadata["num_exits"] = graph.metadata.get("num_exits",
                                                     len(accel.exit_paths))
    accel.metadata["zero_skip"] = zero_skip
    return accel
