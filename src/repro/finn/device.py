"""FPGA device models.

The paper targets a Xilinx Zynq UltraScale+ MPSoC ZCU104 board (XCZU7EV)
at 100 MHz. The device model holds the resource envelope and checks that
compiled accelerators fit — the reason the paper's library spans pruning
rates: heavily pruned designs leave room, unpruned ones approach limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import ResourceEstimate
from ..core.errors import PermanentError

__all__ = ["FPGADevice", "ZCU104", "PYNQ_Z1", "UtilizationError"]


class UtilizationError(PermanentError, ValueError):
    """An accelerator exceeds the device's resources.

    Permanent by nature — a design point that overflows the part will
    overflow it on every retry — so supervision quarantines rather than
    retries it.
    """


@dataclass(frozen=True)
class FPGADevice:
    """Resource envelope of one FPGA part."""

    name: str
    part: str
    lut: int
    ff: int
    bram18: int
    dsp: int
    default_clock_mhz: float = 100.0

    def utilization(self, res: ResourceEstimate) -> dict:
        """Fraction of each resource class the estimate occupies."""
        return {
            "lut": res.lut / self.lut,
            "ff": res.ff / self.ff,
            "bram18": res.bram18 / self.bram18,
            "dsp": res.dsp / self.dsp if self.dsp else 0.0,
        }

    def fits(self, res: ResourceEstimate, margin: float = 0.0) -> bool:
        """True if the estimate fits with a (0..1) safety margin."""
        if not 0.0 <= margin < 1.0:
            raise ValueError("margin must be in [0, 1)")
        limit = 1.0 - margin
        return all(frac <= limit for frac in self.utilization(res).values())

    def check(self, res: ResourceEstimate, margin: float = 0.0) -> None:
        if not self.fits(res, margin):
            util = {k: f"{v:.1%}" for k, v in self.utilization(res).items()}
            raise UtilizationError(
                f"design does not fit {self.name} (margin {margin:.0%}): {util}"
            )


#: The paper's board: ZCU104 with the XCZU7EV MPSoC.
ZCU104 = FPGADevice(
    name="ZCU104",
    part="XCZU7EV",
    lut=230_400,
    ff=460_800,
    bram18=624,
    dsp=1_728,
    default_clock_mhz=100.0,
)

#: Smaller edge board, useful for utilization-pressure experiments.
PYNQ_Z1 = FPGADevice(
    name="PYNQ-Z1",
    part="XC7Z020",
    lut=53_200,
    ff=106_400,
    bram18=280,
    dsp=220,
    default_clock_mhz=100.0,
)
