"""Compressed (idx, val) weight export for pruned accelerators.

A zero-skipping MVTU does not stream the dense weight matrix: it stores
only the non-zero weights plus their column indices, the format Snippet
1's accelerator uses on-chip. This module produces that export straight
from an IR graph — one :class:`SparseTensor` per Conv/MatMul weight —
annotated with per-layer non-zero density and, when a
:class:`~repro.pruning.pruner.PruneReport` is supplied, the channel
decisions that produced the sparsity (which output channels survived,
out of how many).

The export is **exact**: ``to_dense()`` reconstructs the original weight
array bit-for-bit for any NumPy numeric dtype (the round-trip property
tests sweep dtypes, fully-dense, and fully-pruned layers), and the
JSON-able dict form keeps exactness by encoding the raw value bytes.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import IRGraph

__all__ = ["SparseTensor", "SparseLayerExport", "SparseModelExport",
           "export_sparse_weights"]


@dataclass(frozen=True)
class SparseTensor:
    """A dense array stored as flat (idx, val) pairs of its non-zeros."""

    shape: tuple
    dtype: str
    indices: np.ndarray  # int64, flat indices into the dense array, sorted
    values: np.ndarray   # same dtype as the dense array

    def __post_init__(self):
        if self.indices.shape != self.values.shape:
            raise ValueError("indices and values must pair up 1:1")

    @classmethod
    def from_dense(cls, arr: np.ndarray) -> "SparseTensor":
        arr = np.asarray(arr)
        flat = arr.reshape(-1)
        idx = np.flatnonzero(flat).astype(np.int64)
        return cls(shape=tuple(arr.shape), dtype=str(arr.dtype),
                   indices=idx, values=flat[idx].copy())

    def to_dense(self) -> np.ndarray:
        flat = np.zeros(int(np.prod(self.shape, dtype=np.int64)),
                        dtype=np.dtype(self.dtype))
        flat[self.indices] = self.values
        return flat.reshape(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Non-zero fraction (1.0 for an empty tensor: nothing to skip)."""
        return self.nnz / self.size if self.size else 1.0

    # -- serialization (exact: raw little-endian bytes, base64) ---------
    def to_dict(self) -> dict:
        return {
            "shape": list(self.shape),
            "dtype": self.dtype,
            "indices": base64.b64encode(
                np.ascontiguousarray(self.indices).tobytes()).decode(),
            "values": base64.b64encode(
                np.ascontiguousarray(self.values).tobytes()).decode(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SparseTensor":
        dtype = np.dtype(d["dtype"])
        indices = np.frombuffer(base64.b64decode(d["indices"]),
                                dtype=np.int64).copy()
        values = np.frombuffer(base64.b64decode(d["values"]),
                               dtype=dtype).copy()
        return cls(shape=tuple(d["shape"]), dtype=str(dtype),
                   indices=indices, values=values)


@dataclass(frozen=True)
class SparseLayerExport:
    """One compute layer's compressed weights plus channel metadata."""

    name: str                      # IR node name (scope-prefixed)
    op_type: str                   # "Conv" | "MatMul"
    weight: SparseTensor
    weight_bits: int
    # Channel decisions from the PruneReport, when available: which
    # output channels survived pruning (None = layer was not pruned).
    channels_total: int | None = None
    channels_kept: tuple | None = None

    @property
    def density(self) -> float:
        return self.weight.density

    @property
    def channel_sparsity(self) -> float:
        """Fraction of output channels removed by pruning (0 if unknown)."""
        if self.channels_total is None or self.channels_kept is None \
                or not self.channels_total:
            return 0.0
        return 1.0 - len(self.channels_kept) / self.channels_total

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "op_type": self.op_type,
            "weight": self.weight.to_dict(),
            "weight_bits": self.weight_bits,
            "channels_total": self.channels_total,
            "channels_kept": list(self.channels_kept)
            if self.channels_kept is not None else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SparseLayerExport":
        kept = d.get("channels_kept")
        return cls(
            name=d["name"], op_type=d["op_type"],
            weight=SparseTensor.from_dict(d["weight"]),
            weight_bits=int(d["weight_bits"]),
            channels_total=d.get("channels_total"),
            channels_kept=tuple(kept) if kept is not None else None,
        )


@dataclass
class SparseModelExport:
    """Every compute layer of one graph in compressed form."""

    graph_name: str
    layers: list = field(default_factory=list)  # [SparseLayerExport]

    def layer(self, name: str) -> SparseLayerExport:
        for entry in self.layers:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def to_dense(self) -> dict:
        """Exact dense reconstruction, ``{node name: weight array}``."""
        return {entry.name: entry.weight.to_dense() for entry in self.layers}

    def density(self) -> float:
        """Element-weighted non-zero density across all layers."""
        total = sum(entry.weight.size for entry in self.layers)
        nnz = sum(entry.weight.nnz for entry in self.layers)
        return nnz / total if total else 1.0

    def nnz(self) -> int:
        return sum(entry.weight.nnz for entry in self.layers)

    def to_dict(self) -> dict:
        return {"graph_name": self.graph_name,
                "layers": [entry.to_dict() for entry in self.layers]}

    @classmethod
    def from_dict(cls, d: dict) -> "SparseModelExport":
        return cls(graph_name=d["graph_name"],
                   layers=[SparseLayerExport.from_dict(e)
                           for e in d["layers"]])


def export_sparse_weights(graph: IRGraph,
                          report=None) -> SparseModelExport:
    """Compress every Conv/MatMul weight of ``graph`` to (idx, val) form.

    ``report`` is an optional :class:`~repro.pruning.pruner.PruneReport`;
    its per-layer decisions (matched on the bare layer name, IR node
    names carry a ``seg0/`` scope prefix) become the channel metadata a
    sparse accelerator needs to address the surviving filters.
    """
    decisions = {}
    if report is not None:
        decisions = {d.layer_name: d for d in report.decisions}
    export = SparseModelExport(graph_name=graph.name)
    for node in graph.topological_order():
        if node.op_type not in ("Conv", "MatMul"):
            continue
        weight = node.initializers["weight"]
        bare = node.name.split("/")[-1]
        decision = decisions.get(bare)
        export.layers.append(SparseLayerExport(
            name=node.name,
            op_type=node.op_type,
            weight=SparseTensor.from_dense(weight),
            weight_bits=int(node.attrs.get("weight_bits", 32)),
            channels_total=decision.channels_before
            if decision is not None else None,
            channels_kept=decision.keep if decision is not None else None,
        ))
    return export
