"""FPGA resource estimates.

:class:`ResourceEstimate` is the common currency every HLS module model
produces and the device model checks. The analytic cost functions follow
the FINN-R paper's scaling laws: MVTU compute LUTs grow with
``PE * SIMD * (weight_bits * act_bits)``, weight memories consume BRAM18
blocks (18 kbit each), sliding-window line buffers and stream FIFOs are
BRAM when deep and LUTRAM when shallow. Absolute constants are
calibrated so trends (not absolute board numbers) match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceEstimate", "BRAM18_BITS", "LUTRAM_THRESHOLD_BITS",
           "DSP_OPERAND_BITS", "DSP_PACK_FACTOR",
           "bram18_for_bits", "dsp_for_macs", "memory_resources"]

BRAM18_BITS = 18 * 1024
# Below this, a memory is mapped to LUTRAM instead of BRAM.
LUTRAM_THRESHOLD_BITS = 4096
# MACs whose operands reach this width synthesize to DSP slices instead
# of LUTs (FINN-R keeps <8-bit arithmetic in fabric).
DSP_OPERAND_BITS = 8
# Two 8x8 multiplies share one DSP48 via SIMD packing (one operand in
# the high half of the 27-bit port) — the INT8 trick Snippet 1 and
# Xilinx WP487 describe.
DSP_PACK_FACTOR = 2


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT / FF / BRAM18 / DSP counts (fractions allowed mid-estimate)."""

    lut: float = 0.0
    ff: float = 0.0
    bram18: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram18 + other.bram18,
            self.dsp + other.dsp,
        )

    def __radd__(self, other):
        if other == 0:  # allow sum()
            return self
        return self.__add__(other)

    def scaled(self, factor: float) -> "ResourceEstimate":
        return ResourceEstimate(self.lut * factor, self.ff * factor,
                                self.bram18 * factor, self.dsp * factor)

    def as_dict(self) -> dict:
        return {"lut": self.lut, "ff": self.ff, "bram18": self.bram18,
                "dsp": self.dsp}


def bram18_for_bits(bits: float, packing_efficiency: float = 0.8) -> float:
    """BRAM18 blocks to store ``bits`` with realistic packing losses.

    Memories rarely tile BRAM aspect ratios perfectly; FINN reports ~70-90%
    packing efficiency, so the default divides capacity by 0.8.
    """
    import math

    if bits <= 0:
        return 0.0
    if packing_efficiency <= 0 or packing_efficiency > 1:
        raise ValueError("packing_efficiency must be in (0, 1]")
    # max() guards float underflow: any positive size costs >= 1 block.
    return max(1, math.ceil(bits / (BRAM18_BITS * packing_efficiency)))


def dsp_for_macs(pe: int, simd: int, weight_bits: int,
                 act_bits: int) -> float:
    """DSP slices consumed by a ``pe * simd`` MAC array.

    Sub-8-bit operands stay in LUT fabric (0 DSPs, the FINN-R default).
    At 8-bit operands each multiply maps to a DSP slice, and two 8x8
    products share one slice via SIMD packing as long as *both* operands
    fit 8 bits; wider operands forfeit the packing and cost one DSP per
    MAC lane.
    """
    import math

    if pe < 1 or simd < 1:
        raise ValueError("pe and simd must be >= 1")
    if weight_bits < DSP_OPERAND_BITS:
        return 0.0
    lanes = pe * simd
    if weight_bits <= DSP_OPERAND_BITS and act_bits <= DSP_OPERAND_BITS:
        return float(math.ceil(lanes / DSP_PACK_FACTOR))
    return float(lanes)


def memory_resources(bits: float) -> ResourceEstimate:
    """Map a memory to BRAM or LUTRAM depending on its size."""
    if bits <= 0:
        return ResourceEstimate()
    if bits < LUTRAM_THRESHOLD_BITS:
        # LUTRAM: one 6-input LUT stores 64 bits.
        return ResourceEstimate(lut=bits / 64.0)
    return ResourceEstimate(bram18=bram18_for_bits(bits))
