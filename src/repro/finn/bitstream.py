"""Bitstream artifacts and FPGA reconfiguration cost.

Each pruned CNN maps to its own hard-wired dataflow accelerator, so
switching pruning rates at runtime means loading a different full
bitstream. The paper measures four reconfigurations totalling 580 ms on
the ZCU104, i.e. ~145 ms per swap — the cost the runtime manager must
amortize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import FPGADevice, ZCU104
from .resources import ResourceEstimate

__all__ = ["Bitstream", "RECONFIG_MS_ZCU104", "reconfiguration_time_s"]

#: Per-swap full reconfiguration latency measured by the paper (580 ms / 4).
RECONFIG_MS_ZCU104 = 145.0


@dataclass(frozen=True)
class Bitstream:
    """A synthesized design ready to load onto the FPGA."""

    name: str
    device: FPGADevice = field(default=ZCU104)
    resources: ResourceEstimate = field(default_factory=ResourceEstimate)
    clock_mhz: float = 100.0

    @property
    def size_bits(self) -> int:
        """Full-device bitstream size (configuration frames are fixed per
        part, independent of design utilization)."""
        # Rough XCZU7EV figure: ~246 Mbit configuration data.
        return 246 * 1024 * 1024

    def reconfiguration_time_s(self) -> float:
        return reconfiguration_time_s(self.device)


def reconfiguration_time_s(device: FPGADevice = ZCU104) -> float:
    """Full-reconfiguration latency for a device (seconds).

    Scaled from the paper's ZCU104 measurement by fabric size for other
    parts (configuration time is roughly proportional to frame count).
    """
    scale = device.lut / ZCU104.lut
    return (RECONFIG_MS_ZCU104 / 1000.0) * scale
