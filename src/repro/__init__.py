"""AdaPEx reproduction: pruning and early-exit co-optimization for CNN
acceleration on FPGAs (Korol et al., DATE 2023).

Public API highlights
---------------------
* :class:`AdaPExFramework` / :class:`AdaPExConfig` — end-to-end driver.
* :mod:`repro.nn` — NumPy quantization-aware training substrate.
* :mod:`repro.models` — CNV and early-exit construction.
* :mod:`repro.pruning` — dataflow-aware structured filter pruning.
* :mod:`repro.ir` / :mod:`repro.finn` — ONNX-like IR and the FINN-like
  dataflow compiler with resource/performance/power models.
* :mod:`repro.runtime` — the Library, Runtime Manager, and baselines.
* :mod:`repro.edge` — the smart-surveillance edge-server simulation.
"""

from .core import AdaPExConfig, AdaPExFramework, LibraryGenerator

__version__ = "0.1.0"

__all__ = ["AdaPExConfig", "AdaPExFramework", "LibraryGenerator",
           "__version__"]
