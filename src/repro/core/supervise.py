"""Supervised execution of design-point work units.

:class:`SupervisedPool` wraps the process-parallel backend
(:mod:`repro.core.parallel`) with the failure handling a production
sweep needs:

* **wall-clock timeouts** — a hung worker cannot be cancelled through
  ``concurrent.futures``, so on deadline the whole pool is terminated
  and the surviving work units are resubmitted on a fresh one; only the
  timed-out unit is charged an attempt, and a unit's clock starts when
  it is handed to an idle worker, never while it waits for a slot;
* **crash detection** — a worker that dies (segfault, OOM kill,
  ``os._exit``) breaks the pool; units that completed before the break
  keep their results, units that were running are charged a crash
  attempt, queued units are resubmitted for free;
* **retries with capped backoff** — transient/unknown failures are
  retried up to ``retries`` times with exponentially growing, capped
  sleeps between attempts;
* **quarantine** — a unit that fails permanently (typed
  :class:`~repro.core.errors.PermanentError`) or exhausts its retry
  budget is recorded as a structured :class:`FailedPoint` instead of
  aborting the sweep. The caller decides what a partial result means.

Results are reported in item order regardless of completion order, so a
fully successful supervised run is indistinguishable from
:func:`repro.core.parallel.parallel_map`. ``KeyboardInterrupt`` /
``SystemExit`` are never swallowed — a killed sweep must stay killable
(and resumable from its checkpoint manifest).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from .errors import WorkTimeoutError, WorkerCrashError, classify_error
from .parallel import fork_available, resolve_workers

__all__ = ["SuperviseConfig", "FailedPoint", "SweepOutcome",
           "SupervisedPool"]


@dataclass(frozen=True)
class SuperviseConfig:
    """Failure-handling knobs of a supervised run."""

    timeout_s: float | None = None  # per-item wall clock (parallel path)
    retries: int = 2                # retry budget per item
    backoff_s: float = 0.05         # first retry sleep
    backoff_cap_s: float = 2.0      # exponential backoff ceiling
    poll_interval_s: float = 0.05   # supervision loop tick

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based), capped."""
        return min(self.backoff_s * (2 ** max(attempt - 1, 0)),
                   self.backoff_cap_s)


@dataclass(frozen=True)
class FailedPoint:
    """Structured record of one quarantined work unit."""

    label: str
    kind: str        # transient | permanent | unknown | timeout | crash
    error_type: str  # exception class name
    message: str
    attempts: int    # failed attempts before quarantine

    def reason(self) -> str:
        return (f"{self.kind} failure after {self.attempts} attempt(s): "
                f"{self.error_type}: {self.message}")

    def to_dict(self) -> dict:
        return {"label": self.label, "kind": self.kind,
                "error_type": self.error_type, "message": self.message,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, d: dict) -> "FailedPoint":
        return cls(label=str(d["label"]), kind=str(d["kind"]),
                   error_type=str(d["error_type"]),
                   message=str(d["message"]),
                   attempts=int(d["attempts"]))


@dataclass
class SweepOutcome:
    """What a supervised run produced."""

    results: list                      # item-ordered; None where failed
    failures: dict = field(default_factory=dict)  # index -> FailedPoint
    retries: int = 0                   # retry attempts performed

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> int:
        return sum(r is not None for r in self.results)


class _ItemState:
    """Per-item supervision bookkeeping."""

    __slots__ = ("attempts",)

    def __init__(self):
        self.attempts = 0


class SupervisedPool:
    """Retry/timeout/quarantine supervision over a process pool.

    Parameters
    ----------
    workers:
        Worker-count knob (see
        :func:`repro.core.parallel.resolve_workers`). With one worker —
        or without ``fork`` — items run serially in-process; retries and
        quarantine still apply, but wall-clock timeouts do not (a hung
        in-process call cannot be safely preempted).
    config:
        A :class:`SuperviseConfig`; defaults to retries with backoff and
        no timeout.
    progress / label:
        As in :func:`~repro.core.parallel.parallel_map`; retry and
        quarantine events are reported through the same channel.
    initializer / initargs:
        Per-worker one-time setup; rerun whenever a pool is rebuilt
        after a crash or timeout.
    """

    def __init__(self, workers=1, config: SuperviseConfig | None = None,
                 progress=None, label=None, initializer=None, initargs=()):
        self.workers = resolve_workers(workers)
        self.config = config or SuperviseConfig()
        self._progress = progress or (lambda msg: None)
        self._label = label or repr
        self._initializer = initializer
        self._initargs = initargs

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, fn, items, on_result=None, on_failure=None) -> SweepOutcome:
        """Apply ``fn`` to every item under supervision.

        ``on_result(index, item, result)`` fires in the parent as each
        item completes (any completion order); use it to checkpoint.
        ``on_failure(index, item, failed_point)`` fires on quarantine.
        Returns a :class:`SweepOutcome` with item-ordered results.
        """
        items = list(items)
        outcome = SweepOutcome(results=[None] * len(items))
        state = [_ItemState() for _ in items]
        ctx = _RunContext(self, items, outcome, state, on_result,
                          on_failure)
        if not items:
            return outcome
        workers = min(self.workers, len(items))
        if workers <= 1 or not fork_available():
            self._run_serial(fn, ctx)
        else:
            self._run_parallel(fn, ctx, workers)
        return outcome

    # ------------------------------------------------------------------
    # serial path
    # ------------------------------------------------------------------
    def _run_serial(self, fn, ctx: "_RunContext") -> None:
        if self._initializer is not None:
            self._initializer(*self._initargs)
        for i, item in enumerate(ctx.items):
            while True:
                try:
                    result = fn(item)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    if ctx.note_failure(i, exc, classify_error(exc)):
                        time.sleep(self.config.backoff_for(
                            ctx.state[i].attempts))
                        continue
                    break
                ctx.note_result(i, result)
                break

    # ------------------------------------------------------------------
    # parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, fn, ctx: "_RunContext", workers: int) -> None:
        pending = list(range(len(ctx.items)))
        wave = 0
        while pending:
            if wave:
                # One capped inter-wave backoff covers every requeued
                # item (their individual budgets differ by at most one
                # attempt).
                time.sleep(self.config.backoff_for(wave))
            wave += 1
            pending = self._run_wave(fn, ctx, pending, workers)

    def _run_wave(self, fn, ctx: "_RunContext", wave: list,
                  workers: int) -> list:
        """Run one pool's worth of items; returns indices to rerun."""
        cfg = self.config
        mp_ctx = mp.get_context("fork")
        cap = min(workers, len(wave))
        pool = ProcessPoolExecutor(max_workers=cap, mp_context=mp_ctx,
                                   initializer=self._initializer,
                                   initargs=self._initargs)
        # Items are handed to the pool at most ``cap`` at a time, so
        # every submitted unit lands on an idle worker and submission
        # time is an honest start time for the wall-clock deadline.
        # Items still waiting in ``queue`` have no deadline — they must
        # not burn budget (or retry attempts) while waiting for a slot.
        queue = deque(wave)
        futures: dict = {}     # future -> item index
        deadline: dict = {}    # future -> monotonic deadline
        handled: set = set()   # futures folded into the outcome/requeue
        requeue: list[int] = []
        not_done: set = set()
        running: set = set()

        def submit_more():
            now = time.monotonic()
            while queue and len(not_done) < cap:
                i = queue.popleft()
                f = pool.submit(fn, ctx.items[i])
                futures[f] = i
                not_done.add(f)
                if cfg.timeout_s is not None:
                    deadline[f] = now + cfg.timeout_s

        try:
            submit_more()  # a fresh pool cannot be broken yet
            while not_done:
                running = {f for f in not_done if f.running()}
                done, not_done = wait(not_done,
                                      timeout=cfg.poll_interval_s,
                                      return_when=FIRST_COMPLETED)
                try:
                    for f in done:
                        self._collect(ctx, futures[f], f, requeue)
                        handled.add(f)
                    submit_more()
                except BrokenProcessPool:
                    self._handle_broken_pool(
                        ctx, futures,
                        [f for f in futures if f not in handled],
                        running, requeue)
                    requeue.extend(queue)  # unsubmitted items rerun free
                    return requeue
                if deadline:
                    now = time.monotonic()
                    expired = [f for f in not_done
                               if now >= deadline[f]]
                    if expired:
                        self._handle_timeout(ctx, futures, expired,
                                             not_done, requeue)
                        requeue.extend(queue)
                        return requeue
            return requeue
        finally:
            self._shutdown(pool)

    def _collect(self, ctx: "_RunContext", i: int, future, requeue) -> None:
        """Fold one finished future into the outcome."""
        try:
            result = future.result()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BrokenProcessPool:
            raise
        except Exception as exc:
            if ctx.note_failure(i, exc, classify_error(exc)):
                requeue.append(i)
        else:
            ctx.note_result(i, result)

    def _handle_broken_pool(self, ctx: "_RunContext", futures, candidates,
                            running, requeue) -> None:
        """A worker died. First salvage completed futures that still
        hold a retrievable outcome (they finished before the pool broke
        but had not been collected yet), then charge the units that were
        running; requeue the rest for free."""
        unresolved = []
        for f in candidates:
            i = futures[f]
            if i in ctx.finished:
                continue
            if f.done():
                try:
                    self._collect(ctx, i, f, requeue)
                    continue
                except BrokenProcessPool:
                    pass  # this future's "result" is the pool break
            unresolved.append(f)
        # If nothing was observably running (e.g. the pool initializer
        # itself crashes), charge everyone — otherwise the wave loop
        # could respin forever without making progress.
        charged = running & set(unresolved) or set(unresolved)
        for f in unresolved:
            i = futures[f]
            if f in charged:
                exc = WorkerCrashError(
                    "worker process died while the unit was in flight")
                if ctx.note_failure(i, exc, "crash"):
                    requeue.append(i)
            else:
                requeue.append(i)

    def _handle_timeout(self, ctx: "_RunContext", futures, expired,
                        not_done, requeue) -> None:
        """Deadline passed for some started units: charge them, requeue
        the innocent bystanders sharing the pool — items never handed to
        the pool carry no deadline at all and ride along for free."""
        cfg = self.config
        for f in expired:
            i = futures[f]
            exc = WorkTimeoutError(
                f"exceeded the {cfg.timeout_s:g}s wall-clock budget")
            if ctx.note_failure(i, exc, "timeout"):
                requeue.append(i)
        for f in not_done:
            if f in expired:
                continue
            if f.done():
                try:
                    self._collect(ctx, futures[f], f, requeue)
                except BrokenProcessPool:
                    requeue.append(futures[f])
            else:
                requeue.append(futures[f])

    @staticmethod
    def _shutdown(pool) -> None:
        """Tear a pool down without waiting on hung workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()


class _RunContext:
    """Shared mutable state of one :meth:`SupervisedPool.run` call."""

    def __init__(self, pool: SupervisedPool, items, outcome: SweepOutcome,
                 state, on_result, on_failure):
        self.pool = pool
        self.items = items
        self.outcome = outcome
        self.state = state
        self.on_result = on_result
        self.on_failure = on_failure
        self.finished: set[int] = set()  # indices done or quarantined
        self._completed = 0

    def note_result(self, i: int, result) -> None:
        self.outcome.results[i] = result
        self.finished.add(i)
        self._completed += 1
        self.pool._progress(
            f"{self.pool._label(self.items[i])} done "
            f"({self._completed}/{len(self.items)})")
        if self.on_result is not None:
            self.on_result(i, self.items[i], result)

    def note_failure(self, i: int, exc: BaseException, kind: str) -> bool:
        """Record a failed attempt. Returns True when the item should be
        retried, False when it was quarantined."""
        cfg = self.pool.config
        state = self.state[i]
        state.attempts += 1
        label = self.pool._label(self.items[i])
        detail = f"{type(exc).__name__}: {exc}"
        retryable = kind != "permanent"
        if retryable and state.attempts <= cfg.retries:
            self.outcome.retries += 1
            self.pool._progress(
                f"{label} failed ({detail}); retry "
                f"{state.attempts}/{cfg.retries} in "
                f"{cfg.backoff_for(state.attempts):.2f}s")
            return True
        failed = FailedPoint(label=label, kind=kind,
                             error_type=type(exc).__name__,
                             message=str(exc), attempts=state.attempts)
        self.outcome.failures[i] = failed
        self.finished.add(i)
        self.pool._progress(f"{label} quarantined after "
                            f"{state.attempts} attempt(s) ({detail})")
        if self.on_failure is not None:
            self.on_failure(i, self.items[i], failed)
        return False
