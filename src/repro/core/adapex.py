"""AdaPEx facade: design-time generation + runtime evaluation in one place.

This is the high-level entry point downstream users interact with::

    from repro import AdaPExFramework, AdaPExConfig

    framework = AdaPExFramework(AdaPExConfig.quick())
    library = framework.build_library()
    results = framework.evaluate_at_edge(["adapex", "finn"], runs=5)
"""

from __future__ import annotations

import os

from ..edge.metrics import AggregateMetrics
from ..edge.server import ServerConfig, simulate_policy
from ..edge.cameras import WorkloadSpec
from ..runtime.baselines import make_policy
from ..runtime.library import Library
from ..runtime.manager import SelectionPolicy
from .config import AdaPExConfig
from .design_time import LibraryGenerator
from .instrument import PhaseTimer

__all__ = ["AdaPExFramework"]


class AdaPExFramework:
    """End-to-end driver for the reproduction."""

    def __init__(self, config: AdaPExConfig | None = None):
        self.config = config or AdaPExConfig()
        self._library: Library | None = None

    # ------------------------------------------------------------------
    # design time
    # ------------------------------------------------------------------
    def build_library(self, progress=None,
                      cache_dir: str | None = None,
                      point_cache=None,
                      timer: PhaseTimer | None = None,
                      supervise=None) -> Library:
        """Generate (or load from cache) the design-time Library.

        ``cache_dir`` enables a JSON disk cache keyed by the config
        fingerprint — library generation trains dozens of models, so the
        benchmarks reuse it across invocations. On a whole-library miss,
        the per-design-point cache kicks in: ``point_cache`` (a
        :class:`~repro.core.pointcache.PointCache`, a directory path, or
        ``True`` to place it under ``cache_dir/points``) lets interrupted
        or incremental sweeps reuse every already-characterized point.
        ``timer`` (a :class:`~repro.core.instrument.PhaseTimer`) collects
        per-phase wall time for the run. ``supervise`` (a
        :class:`~repro.core.supervise.SuperviseConfig`) tunes per-point
        timeouts/retries/quarantine for the sweep.
        """
        if self._library is not None:
            return self._library
        cache_path = None
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
            cache_path = os.path.join(
                cache_dir, f"library_{self.config.dataset}_"
                f"{self.config.cache_key()}.json")
            if os.path.exists(cache_path):
                self._library = Library.load(cache_path)
                return self._library
        if point_cache is True:
            if cache_dir is None:
                raise ValueError("point_cache=True requires cache_dir")
            point_cache = os.path.join(cache_dir, "points")
        generator = LibraryGenerator(self.config)
        self._library = generator.generate(progress=progress,
                                           point_cache=point_cache,
                                           timer=timer,
                                           supervise=supervise)
        # A partial library (quarantined design points) must not poison
        # the whole-library cache: a later run could otherwise mistake
        # it for the complete sweep.
        if cache_path is not None \
                and "quarantined" not in self._library.metadata:
            self._library.save(cache_path)
        return self._library

    @property
    def library(self) -> Library:
        if self._library is None:
            raise RuntimeError("call build_library() first")
        return self._library

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def policy(self, name: str = "adapex",
               selection: SelectionPolicy | None = None):
        """Instantiate a runtime policy over the built library."""
        return make_policy(name, self.library, selection)

    def evaluate_at_edge(
        self,
        policies=("adapex", "pr-only", "ct-only", "finn"),
        runs: int = 100,
        workload: WorkloadSpec | None = None,
        server: ServerConfig | None = None,
        selection: SelectionPolicy | None = None,
        base_seed: int = 0,
        parallel: bool | int = False,
        timer: PhaseTimer | None = None,
    ) -> dict[str, AggregateMetrics]:
        """Simulate the edge scenario for each policy; returns aggregates
        keyed by policy display name.

        ``parallel`` fans each policy's runs out over worker processes
        (seed-exact, see :func:`repro.edge.simulate_policy`); ``timer``
        accumulates the wall time under a ``simulate`` phase.
        """
        timer = timer or PhaseTimer()
        if server is None:
            server = ServerConfig(sim_mode=self.config.sim_mode)
        results: dict[str, AggregateMetrics] = {}
        for name in policies:
            policy = self.policy(name, selection)
            with timer.phase("simulate"):
                aggregate, _ = simulate_policy(
                    policy, runs=runs, workload=workload, config=server,
                    base_seed=base_seed, parallel=parallel)
            results[aggregate.policy] = aggregate
        return results
