"""Process-based parallel execution backend.

The design-time sweep and the edge-server evaluation are both
embarrassingly parallel, but almost every cycle is spent inside NumPy
Python loops that hold the GIL — a thread pool buys nothing. This module
wraps :class:`~concurrent.futures.ProcessPoolExecutor` behind one
ordered-``map`` primitive shared by both layers:

* **Deterministic ordering** — results come back in submission order no
  matter which worker finishes first, so parallel runs are bit-identical
  to serial ones.
* **Progress routing** — per-item completion messages are forwarded to
  the caller's ``progress`` callback from the parent process (workers
  cannot print into the caller's log).
* **Graceful fallback** — serial execution when ``workers <= 1``, when
  there is at most one item, or when the platform lacks the ``fork``
  start method (workers rely on cheap address-space inheritance; spawn
  would re-import the world per worker).

Workers are handed their one-time context (datasets, base model weights)
through a standard ``initializer`` so per-item task payloads stay small
and picklable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor, as_completed

__all__ = ["fork_available", "resolve_workers", "parallel_map"]


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in mp.get_all_start_methods()


def resolve_workers(workers) -> int:
    """Normalize a worker-count knob.

    ``True`` means "one per CPU"; ``None``/``False``/``0`` mean serial;
    an int is taken as-is (minimum 1).
    """
    if workers is True:
        return os.cpu_count() or 1
    if not workers:
        return 1
    return max(1, int(workers))


def parallel_map(fn, items, *, workers=1, progress=None, label=None,
                 initializer=None, initargs=()):
    """Ordered map over ``items``, optionally across worker processes.

    Parameters
    ----------
    fn:
        Picklable callable applied to each item (module-level function).
    items:
        The work units; each must be picklable in the parallel path.
    workers:
        Worker-count knob (see :func:`resolve_workers`). The pool size is
        additionally capped at ``len(items)``.
    progress:
        Optional ``callable(str)`` invoked once per completed item.
    label:
        Optional ``callable(item) -> str`` used in progress messages;
        falls back to ``repr(item)``.
    initializer / initargs:
        Per-worker one-time setup, as in ``ProcessPoolExecutor``. In the
        serial path the initializer runs once, in-process, so ``fn``
        can rely on its side effects either way.

    Returns the list of results in the order of ``items``.
    """
    items = list(items)
    name = label or repr
    workers = min(resolve_workers(workers), len(items))
    if workers <= 1 or not fork_available():
        if initializer is not None:
            initializer(*initargs)
        results = []
        for i, item in enumerate(items):
            results.append(fn(item))
            if progress is not None:
                progress(f"{name(item)} done ({i + 1}/{len(items)})")
        return results

    ctx = mp.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                             initializer=initializer,
                             initargs=initargs) as pool:
        futures = [pool.submit(fn, item) for item in items]
        if progress is not None:
            index = {f: i for i, f in enumerate(futures)}
            done = 0
            for future in as_completed(futures):
                done += 1
                progress(f"{name(items[index[future]])} done "
                         f"({done}/{len(items)})")
        return [f.result() for f in futures]
