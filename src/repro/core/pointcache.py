"""Per-design-point on-disk cache for the Library sweep.

The whole-library JSON cache (``AdaPExFramework.build_library``) is
all-or-nothing: interrupting the sweep, adding one pruning rate, or
bumping the run count throws away every previously characterized design
point. This cache stores each point — the list of
:class:`~repro.runtime.library.LibraryEntry` produced for one
``(config, variant, pruned_exits, rate)`` — as its own JSON file, so
incremental or interrupted sweeps only recompute what changed.

Keys are salted with ``AdaPExConfig.cache_key()``, which already folds in
the flow version and every semantic knob; bumping ``_FLOW_VERSION`` in
:mod:`repro.core.config` invalidates every point at once. Writes are
atomic (temp file + ``os.replace``), so concurrent sweeps sharing a
cache directory never observe half-written points.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path

from ..runtime.library import LibraryEntry

__all__ = ["PointCache"]

log = logging.getLogger(__name__)

# Bump if the on-disk point format itself changes shape.
_POINT_FORMAT = 1


class PointCache:
    """Directory of per-design-point JSON files."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def point_key(config_key: str, variant: str, pruned_exits: bool,
                  rate: float, precision: str = "base",
                  criterion: str = "l1", schedule: str = "hard",
                  fidelity: str = "full") -> str:
        """Stable fingerprint of one design point.

        ``precision``, ``criterion``, ``schedule`` and ``fidelity`` salt
        the key only when they differ from their historical defaults
        (trained-base precision, l1 ranking, hard prune-then-retrain,
        full training budget), so every pre-axis cache file keeps
        hitting — and an INT8/FPGM/PSFP/partial-fidelity point can never
        collide with a default one. ``fidelity`` is the successive-
        halving rung tag (e.g. ``"e4"`` for a 4-epoch checkpoint): rung
        artifacts live beside full-budget points without ever aliasing
        them.
        """
        blob = f"{_POINT_FORMAT}:{config_key}:{variant}:" \
               f"{int(bool(pruned_exits))}:{rate!r}"
        if precision != "base":
            blob += f":{precision}"
        if criterion != "l1":
            blob += f":c={criterion}"
        if schedule != "hard":
            blob += f":s={schedule}"
        if fidelity != "full":
            blob += f":f={fidelity}"
        return hashlib.sha256(blob.encode()).hexdigest()[:20]

    def path_for(self, key: str) -> Path:
        return self.root / f"point_{key}.json"

    def aux_path_for(self, key: str) -> Path:
        return self.root / f"aux_{key}.json"

    def state_path_for(self, key: str) -> Path:
        """Weight-checkpoint sidecar (.npz) for a partial-fidelity point."""
        states = self.root / "states"
        states.mkdir(exist_ok=True)
        return states / f"state_{key}.npz"

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def get(self, key: str):
        """Entries for ``key``, or ``None`` on a miss.

        A file that exists but no longer parses or validates is also a
        miss (the point is simply recomputed), but — unlike a clean miss
        — it is loudly logged with the cache key so silent corruption
        does not masquerade as a cold cache. ``purge_corrupt()`` removes
        such files wholesale.
        """
        path = self.path_for(key)
        try:
            with open(path) as f:
                raw = json.load(f)
            entries = [LibraryEntry.from_dict(d) for d in raw["entries"]]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("point cache entry %s (%s) is corrupt — "
                        "%s: %s — treating as a miss", key, path,
                        type(exc).__name__, exc)
            self.misses += 1
            return None
        self.hits += 1
        return entries

    def put(self, key: str, entries) -> None:
        """Atomically store the entries for ``key``."""
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump({"entries": [e.to_dict() for e in entries]}, f)
        os.replace(tmp, path)

    def get_aux(self, key: str):
        """Auxiliary JSON payload for ``key`` (halving rung scores), or
        ``None`` on a miss or corruption (logged, like :meth:`get`)."""
        path = self.aux_path_for(key)
        try:
            with open(path) as f:
                return json.load(f)["payload"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("aux cache entry %s (%s) is corrupt — %s: %s — "
                        "treating as a miss", key, path,
                        type(exc).__name__, exc)
            return None

    def put_aux(self, key: str, payload) -> None:
        """Atomically store a JSON-serializable payload for ``key``."""
        path = self.aux_path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump({"payload": payload}, f)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(list(self.root.glob("point_*.json")))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cached point (plus aux/state sidecars); returns
        how many point files were removed."""
        removed = 0
        for path in self.root.glob("point_*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("aux_*.json"):
            path.unlink(missing_ok=True)
        for path in self.root.glob("states/state_*.npz"):
            path.unlink(missing_ok=True)
        return removed

    def purge_corrupt(self) -> int:
        """Delete every cached point that no longer parses or validates;
        returns how many files were removed."""
        removed = 0
        for path in sorted(self.root.glob("point_*.json")):
            try:
                with open(path) as f:
                    raw = json.load(f)
                for d in raw["entries"]:
                    LibraryEntry.from_dict(d)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                log.warning("purging corrupt point cache file %s "
                            "(%s: %s)", path, type(exc).__name__, exc)
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def evict(self, keep_latest: int) -> int:
        """Keep only the ``keep_latest`` most recently touched points."""
        if keep_latest < 0:
            raise ValueError("keep_latest must be >= 0")
        paths = sorted(self.root.glob("point_*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        removed = 0
        for path in paths[keep_latest:]:
            path.unlink(missing_ok=True)
            removed += 1
        return removed
