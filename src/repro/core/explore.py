"""Exit-placement exploration.

The paper leaves exit placement to the user ("an active research topic
in areas like NAS, Auto-ML") but its Exits Configuration makes sweeping
placements trivial. This utility trains one model per candidate
configuration, evaluates accuracy/exit statistics, characterizes the
hardware cost through the FINN-like flow, and returns comparable rows —
the programmatic version of ``examples/custom_exit_placement.py``.
"""

from __future__ import annotations

from ..data.synthetic import make_dataset
from ..finn.compile import compile_accelerator
from ..finn.folding import cnv_reference_fold
from ..finn.performance import PerformanceModel
from ..ir.export import export_model
from ..ir.passes import streamline
from ..models.cnv import CNVConfig, build_cnv
from ..models.exits import ExitsConfiguration
from ..nn.trainer import Trainer, evaluate_cascade, evaluate_exits
from .config import AdaPExConfig

__all__ = ["explore_exit_placements"]


def explore_exit_placements(
    candidates: dict,
    config: AdaPExConfig | None = None,
    confidence_threshold: float = 0.5,
    progress=None,
) -> list:
    """Compare exit placements under one training/evaluation budget.

    Parameters
    ----------
    candidates:
        Mapping ``label -> ExitsConfiguration``.
    config:
        Dataset/model/training budget (defaults to the quick profile).
    confidence_threshold:
        Operating threshold for the cascade statistics.

    Returns one dict per candidate with accuracy, per-exit statistics,
    average latency at the threshold, and hardware cost.
    """
    config = config or AdaPExConfig.quick()
    log = progress or (lambda msg: None)
    train, test = make_dataset(config.dataset, config.train_samples,
                               config.test_samples, seed=config.seed)
    num_classes = train.spec.num_classes

    rows = []
    for label, exits_cfg in candidates.items():
        if not isinstance(exits_cfg, ExitsConfiguration):
            raise TypeError(f"candidate {label!r} is not an "
                            "ExitsConfiguration")
        log(f"training candidate {label!r}")
        model = build_cnv(
            CNVConfig(num_classes=num_classes,
                      width_scale=config.width_scale,
                      quant=config.quant, seed=config.seed),
            exits_cfg)
        Trainer(model, config.initial_training).fit(train.images,
                                                    train.labels)

        exit_accs = evaluate_exits(model, test.images, test.labels)
        cascade = evaluate_cascade(model, test.images, test.labels,
                                   confidence_threshold)

        hw = build_cnv(
            CNVConfig(num_classes=num_classes,
                      width_scale=config.resource_width_scale,
                      quant=config.quant, seed=config.seed),
            exits_cfg)
        hw.eval()
        graph = export_model(hw)
        streamline(graph)
        accel = compile_accelerator(graph, cnv_reference_fold(hw),
                                    clock_mhz=config.clock_mhz)
        perf = PerformanceModel(accel)
        res = accel.resources()
        rates = list(cascade["exit_rates"])

        rows.append({
            "placement": label,
            "num_exits": model.num_exits,
            "exit_accuracies": tuple(round(a, 4) for a in exit_accs),
            "cascade_accuracy": cascade["accuracy"],
            "exit_rates": tuple(round(r, 4) for r in rates),
            "avg_latency_ms": perf.average_latency_s(rates) * 1e3,
            "serving_ips": perf.serving_capacity_ips(
                rates, inflight=config.inflight),
            "lut": res.lut,
            "bram18": res.bram18,
        })
    return rows
