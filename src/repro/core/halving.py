"""Multi-fidelity successive-halving search over the design space.

The exhaustive Library Generator trains every ``(variant, rate,
precision, criterion, schedule)`` point for the full retraining budget.
On the widened criterion/schedule axes that is unaffordable, and most of
the budget is spent on points that never reach the accuracy/latency
Pareto front. This module implements the classic successive-halving
schedule instead:

1. Train **every** point for a few epochs (the first fidelity *rung*).
2. Score the cohort on a Pareto objective — best cascade accuracy over
   the confidence-threshold sweep (maximized) against modeled final-exit
   cycles from the compiled FINN accelerator (minimized).
3. Promote roughly the best ``1/eta`` (the whole nondominated front is
   always kept, plus a small safety margin) to the next rung, which
   multiplies the cumulative budget by ``eta``; repeat until the top
   rung reaches the full budget.
4. Fully characterize the top-rung survivors into ordinary
   :class:`~repro.runtime.library.LibraryEntry` rows through the exact
   same ``LibraryGenerator._characterize`` flow as the exhaustive sweep.

No epoch is ever recomputed: each rung trains only the *delta* epochs on
top of the previous rung's weight checkpoint, every rung artifact
(score JSON + ``.npz`` weight state) is stored in the
:class:`~repro.core.pointcache.PointCache` under a **fidelity-salted**
point key, and progress is tracked in the same crash-safe
:class:`~repro.core.checkpoint.SweepManifest` the exhaustive sweep uses.
Killing a halving run at any instant and rerunning it resumes from the
last persisted rung artifact and produces a byte-identical Library,
because training is expressed as deterministic single-epoch units
(seeded ``retraining.seed + absolute_epoch``) whose boundaries coincide
with the rung boundaries — any partition of the epoch sequence into
rungs yields bit-identical weights.

Two fidelity-scoring shortcuts keep rungs cheap without biasing the
final results:

* Rung accuracy is measured on the accuracy twin's own forward pass
  (one batched sweep over the test set), not the compiled inference
  plan. The plan is function-preserving, so the cheap path ranks
  identically; survivors are still characterized through the compiled
  flow.
* Cycles depend only on the architecture, never on training, so they
  are compiled once per point on the first rung — which also quarantines
  infeasible points (e.g. INT8 at low pruning rates overflowing the
  device) *before* any training budget is spent — and carried forward.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

import numpy as np

from ..nn.quant import post_training_quantize
from ..nn.serialize import load_state_arrays, state_arrays
from ..nn.shmstate import publish_state_arrays
from ..nn.trainer import Trainer, cascade_sweep, evaluate_exits
from ..pruning.pruner import prune_model
from ..pruning.schedule import psfp_retrain_epochs
from ..runtime.library import Library
from .checkpoint import SweepManifest
from .config import AdaPExConfig
from .design_time import (LibraryGenerator, _parallel_worker_init,
                          accel_label, describe_point, sweep_points)
from .instrument import PhaseTimer
from .parallel import fork_available
from .pointcache import PointCache
from .supervise import SuperviseConfig, SupervisedPool

__all__ = ["HalvingConfig", "HalvingReport", "HalvingSearch",
           "pareto_ranks", "pareto_front"]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HalvingConfig:
    """Knobs of the successive-halving schedule."""

    #: Epochs of the first (cheapest) fidelity rung.
    min_epochs: int = 1
    #: Budget multiplier between rungs; also the inverse keep fraction.
    eta: int = 2
    #: Safety margin on top of the nondominated front at each promotion:
    #: the kept cohort is at least ``front_size + extra_keep`` (and at
    #: least ``ceil(n / eta)``), so near-front points survive
    #: low-fidelity ranking noise.
    extra_keep: int = 2
    #: Promote schedule twins together. Points that differ only in the
    #: retraining schedule compile to *identical* hardware, so the
    #: cycles axis cannot separate them and the Pareto cut between twins
    #: is decided purely by low-fidelity accuracy — the noisiest signal
    #: (early PSFP barely diverges from its hard projection). Keeping a
    #: kept point's twins defers the schedule verdict until the rungs
    #: reach the top half of the budget, where protection lapses:
    #: half-budget accuracy is trusted to pick between twins rather than
    #: paying the expensive rungs for both.
    keep_schedule_twins: bool = True

    def __post_init__(self):
        if self.min_epochs < 1:
            raise ValueError("min_epochs must be >= 1")
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.extra_keep < 0:
            raise ValueError("extra_keep must be >= 0")

    def rungs(self, full_epochs: int) -> list:
        """Cumulative rung fidelities, e.g. ``[1, 2, 4, 8]`` for R=8.

        A budget at or below ``min_epochs`` degenerates to a single rung
        at the full budget (zero included: score without training).
        """
        if full_epochs <= self.min_epochs:
            return [max(full_epochs, 0)]
        out = [self.min_epochs]
        while out[-1] < full_epochs:
            out.append(min(out[-1] * self.eta, full_epochs))
        return out

    @classmethod
    def parse(cls, text: str) -> "HalvingConfig":
        """Parse a CLI spec like ``"min_epochs=1,eta=2,extra_keep=3"``."""
        kwargs = {}
        names = ("min_epochs", "eta", "extra_keep", "keep_schedule_twins")
        for part in filter(None, (p.strip() for p in text.split(","))):
            name, _, value = part.partition("=")
            if name not in names or not value:
                raise ValueError(
                    f"bad halving spec element {part!r}; expected "
                    "comma-separated min_epochs=N, eta=N, extra_keep=N, "
                    "keep_schedule_twins=0|1")
            try:
                kwargs[name] = (bool(int(value))
                                if name == "keep_schedule_twins"
                                else int(value))
            except ValueError:
                raise ValueError(
                    f"bad halving spec value {part!r}: not an integer"
                ) from None
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Pareto utilities
# ----------------------------------------------------------------------
def _dominates(a, b) -> bool:
    """Pareto domination for (accuracy up, cycles down) objectives."""
    return (a[0] >= b[0] and a[1] <= b[1]
            and (a[0] > b[0] or a[1] < b[1]))


def pareto_ranks(scores) -> list:
    """Nondominated-sorting rank of every ``(accuracy, cycles)`` pair.

    Rank 0 is the Pareto front; rank k is the front after removing all
    ranks below k. Pure comparisons — fully deterministic.
    """
    scores = [(float(a), float(c)) for a, c in scores]
    n = len(scores)
    ranks = [-1] * n
    remaining = set(range(n))
    rank = 0
    while remaining:
        front = [i for i in remaining
                 if not any(_dominates(scores[j], scores[i])
                            for j in remaining if j != i)]
        for i in front:
            ranks[i] = rank
        remaining -= set(front)
        rank += 1
    return ranks


def pareto_front(scores) -> list:
    """Indices of the nondominated ``(accuracy, cycles)`` pairs."""
    return [i for i, r in enumerate(pareto_ranks(scores)) if r == 0]


# ----------------------------------------------------------------------
# run report
# ----------------------------------------------------------------------
@dataclass
class HalvingReport:
    """What one halving run did (including what it reused from cache)."""

    #: One record per rung: {"fidelity", "cohort", "kept"}.
    rungs: list = field(default_factory=list)
    #: Human-readable labels of the fully characterized survivors.
    survivors: list = field(default_factory=list)
    quarantined: int = 0
    #: Epochs actually trained by *this* process (0 on a warm rerun).
    epochs_this_run: int = 0
    #: Epochs the search consumed in total, cached rungs included.
    epochs_total: int = 0
    #: What the exhaustive full-fidelity sweep would have trained.
    exhaustive_epochs: int = 0

    @property
    def epoch_reduction(self) -> float:
        """Exhaustive-over-halving epoch ratio (>1 means savings)."""
        if self.epochs_total <= 0:
            return float("inf") if self.exhaustive_epochs > 0 else 1.0
        return self.exhaustive_epochs / self.epochs_total

    def to_dict(self) -> dict:
        return {"rungs": list(self.rungs),
                "survivors": list(self.survivors),
                "quarantined": self.quarantined,
                "epochs_this_run": self.epochs_this_run,
                "epochs_total": self.epochs_total,
                "exhaustive_epochs": self.exhaustive_epochs,
                "epoch_reduction": self.epoch_reduction}


# ----------------------------------------------------------------------
# per-point work units (module-level: must be picklable for the pool)
# ----------------------------------------------------------------------
def _atomic_save_state(path, model) -> None:
    """Write the model's weight snapshot atomically (tmp + rename)."""
    tmp = str(path) + f".{os.getpid()}.tmp.npz"
    np.savez(tmp, **state_arrays(model))
    os.replace(tmp, path)


def _load_state(path, model) -> None:
    with np.load(path) as data:
        load_state_arrays(model, {k: data[k] for k in data.files})


def _rung_model(gen, ctx, point, crit):
    """The model a rung trains for ``point``.

    Hard schedule (and rate 0): the pruned skeleton — deterministic from
    the base weights and criterion, so rung checkpoints always restore
    into the identical architecture. PSFP: a full-width clone — soft
    masks keep the architecture intact until the final hard prune.
    """
    _key, rate, _prec, _crit_name, sched = point
    if sched == "psfp" and rate > 0:
        return ctx.scaled_base.clone()
    pruned, _report = prune_model(ctx.scaled_base, rate,
                                  constraints=ctx.scaled_constraints,
                                  prune_exits=ctx.pruned_exits,
                                  criterion=crit)
    return pruned


def _point_cycles(gen, ctx, point) -> int:
    """Modeled final-exit cycles of the point's hardware twin.

    Raises the usual permanent errors (folding/compile/device check) for
    infeasible points, quarantining them at the first rung before any
    training budget is spent.
    """
    from ..finn.compile import compile_accelerator
    from ..ir.export import export_model
    from ..ir.passes import streamline

    cfg = gen.config
    _key, rate, prec, crit_name, _sched = point
    crit = gen._resolve_criterion(ctx, crit_name)
    hw, _ = prune_model(ctx.hw_base, rate, constraints=ctx.hw_constraints,
                        prune_exits=ctx.pruned_exits, criterion=crit)
    spec = cfg.precision_spec(prec)
    if spec is not None:
        hw = post_training_quantize(hw, spec.weight_bits, spec.act_bits)
    graph = export_model(hw)
    streamline(graph)
    accel = compile_accelerator(graph, ctx.folding, clock_mhz=cfg.clock_mhz,
                                zero_skip=cfg.zero_skip)
    cfg.device.check(accel.resources())
    return int(accel.exit_cycles(accel.num_exits - 1))


def _train_point(point):
    """A point's rung *training* identity: the point with precision
    stripped.

    Non-base precisions are post-training quantizations — evaluation-only
    transforms of the trained weights — so precision twins of the same
    (variant, rate, criterion, schedule) train bit-identical states. Rung
    checkpoints are keyed by this identity and trained once per group.
    """
    key, rate, _prec, crit, sched = point
    return (key, rate, "base", crit, sched)


def _run_rung_point(gen, contexts, cache, spec):
    """Train one point's rung delta and score it; returns (score, timing).

    ``spec`` is ``(point, f_prev, f_cur, key, prev_key, prev_cycles,
    total_epochs, lead)``. ``key``/``prev_key`` are the precision-
    stripped *state* keys (see :func:`_train_point`); the precision-
    salted score key stays with the caller. The weight checkpoint is
    written *before* the caller persists the score, so a crash can never
    leave a score without its matching state.

    The lead of each train group rebuilds and trains the rung delta from
    the previous checkpoint (ignoring any current-state file, so resumed
    runs recompute deterministically); a follower reuses the shared
    state its lead already wrote, and only falls back to training when
    the lead was lost to quarantine.
    """
    (point, f_prev, f_cur, key, prev_key, prev_cycles, total_epochs,
     lead) = spec
    variant_key, rate, prec, crit_name, sched = point
    cfg = gen.config
    ctx = contexts[variant_key]
    timer = PhaseTimer()
    train, test = gen.datasets()
    crit = gen._resolve_criterion(ctx, crit_name)

    # Cycles first: infeasible points quarantine before any training.
    if prev_cycles is None:
        with timer.phase("compile"):
            cycles = _point_cycles(gen, ctx, point)
    else:
        cycles = int(prev_cycles)

    with timer.phase("prune"):
        model = _rung_model(gen, ctx, point, crit)
    state_path = cache.state_path_for(key)
    reuse = (not lead) and state_path.exists()
    if reuse:
        # A precision twin already trained this rung's shared weights.
        _load_state(state_path, model)
    elif f_prev > 0:
        _load_state(cache.state_path_for(prev_key), model)

    trained = 0
    if not reuse and rate > 0 and f_cur > f_prev:
        with timer.phase("retrain"):
            if sched == "psfp":
                trained = psfp_retrain_epochs(
                    model, rate, train.images, train.labels,
                    cfg.retraining, start_epoch=f_prev,
                    epochs=f_cur - f_prev, total_epochs=total_epochs,
                    prune_exits=ctx.pruned_exits, criterion=crit)
            else:
                # One Trainer per epoch, seeded by the absolute epoch
                # index: any partition of the epoch sequence into rungs
                # produces bit-identical weights.
                for e in range(f_prev, f_cur):
                    epoch_cfg = replace(cfg.retraining, epochs=1,
                                        seed=cfg.retraining.seed + e)
                    Trainer(model, epoch_cfg).fit(train.images,
                                                  train.labels)
                    trained += 1
        timer.add("epochs", 0.0, trained)

    if not reuse:
        _atomic_save_state(state_path, model)

    with timer.phase("characterize"):
        eval_model = model
        if sched == "psfp" and rate > 0:
            # Score the *hard-pruned projection* of the soft weights —
            # what this point will become if promoted to the library.
            # Scoring the soft model itself would compare a barely-
            # masked network (early PSFP fractions are small) against
            # fully-pruned hard-schedule rivals and let PSFP points
            # crowd every rung front.
            eval_model = prune_model(eval_model, rate,
                                     constraints=ctx.scaled_constraints,
                                     prune_exits=ctx.pruned_exits,
                                     criterion=crit)[0]
        spec_q = cfg.precision_spec(prec)
        if spec_q is not None:
            # post_training_quantize clones; the saved state is untouched.
            eval_model = post_training_quantize(model, spec_q.weight_bits,
                                                spec_q.act_bits)
        eval_model.eval()
        if eval_model.num_exits == 1:
            accuracy = float(evaluate_exits(eval_model, test.images,
                                            test.labels)[0])
        else:
            sweep = cascade_sweep(eval_model, test.images, test.labels,
                                  cfg.confidence_thresholds)
            accuracy = max(float(p["accuracy"]) for p in sweep)

    score = {"accuracy": accuracy, "cycles": cycles, "fidelity": f_cur,
             "epochs": trained}
    return score, timer.as_dict()


def _finalize_point(gen, contexts, cache, spec):
    """Turn a top-rung survivor into LibraryEntry rows (no training).

    ``spec`` is ``(point, state_key)``; the checkpointed weights are
    restored and handed to ``LibraryGenerator._characterize`` via
    ``scaled_override``, so the survivor flows through the exact
    characterization pipeline of the exhaustive sweep.
    """
    point, state_key = spec
    variant_key, rate, prec, crit_name, sched = point
    ctx = contexts[variant_key]
    timer = PhaseTimer()
    crit = gen._resolve_criterion(ctx, crit_name)

    if sched == "psfp" and rate > 0:
        # Restore the soft-masked full-width model, then apply the final
        # hard prune — exactly how the exhaustive PSFP pipeline ends.
        soft = ctx.scaled_base.clone()
        _load_state(cache.state_path_for(state_key), soft)
        scaled, report = prune_model(soft, rate,
                                     constraints=ctx.scaled_constraints,
                                     prune_exits=ctx.pruned_exits,
                                     criterion=crit)
    else:
        scaled, report = prune_model(ctx.scaled_base, rate,
                                     constraints=ctx.scaled_constraints,
                                     prune_exits=ctx.pruned_exits,
                                     criterion=crit)
        _load_state(cache.state_path_for(state_key), scaled)

    entries = gen._characterize(ctx, rate, precision=prec, timer=timer,
                                criterion=crit_name, schedule=sched,
                                scaled_override=(scaled, report))
    return entries, timer.as_dict()


def _rung_task(item):
    """Pool worker wrapper: rebuild the cache handle, run the rung."""
    from .design_time import _WORKER_STATE

    spec, cache_root = item
    gen, contexts = _WORKER_STATE
    return _run_rung_point(gen, contexts, PointCache(cache_root), spec)


def _final_task(item):
    from .design_time import _WORKER_STATE

    spec, cache_root = item
    gen, contexts = _WORKER_STATE
    return _finalize_point(gen, contexts, PointCache(cache_root), spec)


# ----------------------------------------------------------------------
# the search engine
# ----------------------------------------------------------------------
class HalvingSearch:
    """Successive-halving front-end over :class:`LibraryGenerator`."""

    def __init__(self, config: AdaPExConfig | None = None,
                 halving: HalvingConfig | None = None,
                 generator: LibraryGenerator | None = None):
        self.generator = generator or LibraryGenerator(config)
        self.config = self.generator.config
        self.halving = halving or HalvingConfig()
        #: :class:`HalvingReport` of the most recent :meth:`run`.
        self.last_report: HalvingReport | None = None

    # ------------------------------------------------------------------
    def run(self, point_cache, progress=None,
            timer: PhaseTimer | None = None,
            supervise: SuperviseConfig | None = None) -> Library:
        """Run the halving search; returns the survivors' Library.

        ``point_cache`` (a :class:`PointCache` or directory path) is
        mandatory: rung checkpoints and scores live there, and they are
        what makes the search resumable and free of epoch recomputation
        on promotion.
        """
        cfg = self.config
        gen = self.generator
        log = progress or (lambda msg: None)
        timer = timer or PhaseTimer()
        supervise = supervise or SuperviseConfig()
        if point_cache is None:
            raise ValueError("halving requires a point cache directory")
        if isinstance(point_cache, (str, os.PathLike)):
            point_cache = PointCache(point_cache)

        full_epochs = cfg.retraining.epochs
        rung_fidelities = self.halving.rungs(full_epochs)
        variants = {(variant, pruned_exits): exits_cfg
                    for variant, exits_cfg, pruned_exits
                    in gen._variants()}
        points = sweep_points(cfg, variants)
        config_key = cfg.point_cache_key()
        manifest = SweepManifest.open(point_cache.root / "manifest.json",
                                      config_key)
        report = HalvingReport(
            exhaustive_epochs=full_epochs * sum(1 for p in points
                                                if p[1] > 0))

        def rung_key(point, fidelity):
            return PointCache.point_key(
                config_key, point[0][0], point[0][1], point[1], point[2],
                point[3], point[4], fidelity=fidelity)

        def state_key(point, fidelity):
            # Checkpoints are shared across precision twins (PTQ is an
            # evaluation-only transform); scores stay precision-salted.
            return rung_key(_train_point(point), fidelity)

        contexts: dict = {}

        def ensure_contexts(pending_points):
            """Train the base models the pending points need (cached)."""
            for vkey in {p[0] for p in pending_points}:
                if vkey in contexts:
                    continue
                log(f"[{cfg.dataset}] training base model "
                    f"({accel_label(*vkey)})")
                with timer.phase("train"):
                    scaled_base = gen.train_base_model(variants[vkey])
                contexts[vkey] = gen._variant_context(
                    vkey[0], variants[vkey], vkey[1], scaled_base)

        def run_pool(task_fn, serial_fn, items, label_fn, on_result,
                     on_failure):
            """Run work items on the supervised pool (serial or forked)."""
            workers = min(cfg.parallel_workers, len(items))
            if workers > 1 and fork_available():
                base_states = {topo: state_arrays(model)
                               for topo, model in gen._base_cache.items()}
                shipment = publish_state_arrays(base_states)
                try:
                    pool = SupervisedPool(
                        workers=workers, config=supervise, progress=log,
                        label=label_fn, initializer=_parallel_worker_init,
                        initargs=(cfg, shipment.payload))
                    pool.run(task_fn, items, on_result=on_result,
                             on_failure=on_failure)
                finally:
                    shipment.close()
            else:
                pool = SupervisedPool(workers=1, config=supervise,
                                      progress=log, label=label_fn)
                pool.run(serial_fn, items, on_result=on_result,
                         on_failure=on_failure)

        scores: dict = {}    # point -> latest rung score dict
        failures: dict = {}  # point -> FailedPoint
        cohort = list(points)

        # --------------------------------------------------------------
        # rung loop
        # --------------------------------------------------------------
        prev_fid = 0
        for rung_idx, fid in enumerate(rung_fidelities):
            tag = f"e{fid}"
            pending = []
            for point in cohort:
                key = rung_key(point, tag)
                manifest.ensure(key, point[0][0], point[0][1], point[1],
                                point[2], point[3], point[4], fidelity=tag)
                cached = point_cache.get_aux(key)
                if cached is not None \
                        and point_cache.state_path_for(
                            state_key(point, tag)).exists():
                    scores[point] = cached
                    if manifest.status(key) != "done":
                        manifest.mark(key, "done")
                elif manifest.status(key) == "quarantined":
                    failures[point] = manifest.failure(key)
                    log(f"{describe_point(cfg, point)} skipped "
                        f"(quarantined: {failures[point].reason()})")
                else:
                    # "failed" (exhausted transient budget) and plain
                    # pending both rerun; score-without-state cannot
                    # happen (state is written first); state-without-
                    # score reruns the rung over a fresh checkpoint.
                    pending.append(point)
            manifest.save()

            if pending:
                ensure_contexts(pending)
                # The first pending member of each precision train group
                # leads (trains the shared checkpoint); the rest follow
                # and reuse it. Followers run in a second batch so the
                # lead's state exists by the time they look for it.
                leads, followers = [], []
                seen_groups: set = set()
                for point in pending:
                    group = _train_point(point)
                    if group in seen_groups:
                        followers.append(point)
                    else:
                        seen_groups.add(group)
                        leads.append(point)

                def rung_spec(point, lead):
                    prev = scores.get(point) if rung_idx > 0 else None
                    return (
                        point, prev_fid if rung_idx > 0 else 0, fid,
                        state_key(point, tag),
                        state_key(point, f"e{prev_fid}")
                        if rung_idx > 0 else None,
                        prev.get("cycles") if prev else None,
                        full_epochs, lead)

                def serial_rung(item):
                    spec, _root = item
                    return _run_rung_point(gen, contexts, point_cache,
                                           spec)

                for batch, is_lead in ((leads, True), (followers, False)):
                    if not batch:
                        continue
                    items = [(rung_spec(point, is_lead),
                              str(point_cache.root)) for point in batch]

                    def on_done(index, item, out, _batch=batch,
                                _tag=tag):
                        score, timing = out
                        point = _batch[index]
                        scores[point] = score
                        timer.merge(timing)
                        report.epochs_this_run += int(
                            score.get("epochs", 0))
                        key = rung_key(point, _tag)
                        point_cache.put_aux(key, score)
                        manifest.mark(key, "done")
                        manifest.save()

                    def on_failed(index, item, failed, _batch=batch,
                                  _tag=tag):
                        point = _batch[index]
                        failures[point] = failed
                        key = rung_key(point, _tag)
                        manifest.mark(key, "quarantined"
                                      if failed.kind == "permanent"
                                      else "failed", failed)
                        manifest.save()

                    run_pool(
                        _rung_task, serial_rung, items,
                        lambda item: (f"{describe_point(cfg, item[0][0])}"
                                      f" (rung e{item[0][2]})"),
                        on_done, on_failed)

            # Unscored points (failed or quarantined) cannot be ranked.
            cohort = [p for p in cohort
                      if p in scores and p not in failures]
            report.epochs_total += sum(
                int(scores[p].get("epochs", 0)) for p in cohort
                if scores[p].get("fidelity") == fid)

            rung_record = {"fidelity": fid, "cohort": len(cohort)}
            if rung_idx < len(rung_fidelities) - 1 and len(cohort) > 1:
                # Twin protection lapses once the next rung enters the
                # top half of the budget: by then accuracy has real
                # signal, and carrying both schedules through the
                # expensive rungs wastes budget.
                protect = (self.halving.keep_schedule_twins
                           and 2 * rung_fidelities[rung_idx + 1]
                           <= rung_fidelities[-1])
                cohort = self._promote(cohort, scores, protect)
            rung_record["kept"] = len(cohort)
            report.rungs.append(rung_record)
            log(f"[{cfg.dataset}] halving rung {tag}: "
                f"{rung_record['cohort']} scored, "
                f"{rung_record['kept']} promoted")
            prev_fid = fid

        # --------------------------------------------------------------
        # full characterization of the top-rung survivors
        # --------------------------------------------------------------
        final_tag = f"e{rung_fidelities[-1]}"
        lib_tag = f"lib-{final_tag}"
        results: dict = {}
        pending_final = []
        for point in cohort:
            key = rung_key(point, lib_tag)
            manifest.ensure(key, point[0][0], point[0][1], point[1],
                            point[2], point[3], point[4], fidelity=lib_tag)
            cached = point_cache.get(key)
            if cached is not None:
                results[point] = cached
                if manifest.status(key) != "done":
                    manifest.mark(key, "done")
            elif manifest.status(key) == "quarantined":
                failures[point] = manifest.failure(key)
            else:
                pending_final.append(point)
        manifest.save()

        if pending_final:
            ensure_contexts(pending_final)
            items = [((point, state_key(point, final_tag)),
                      str(point_cache.root)) for point in pending_final]

            def on_final_done(index, item, out):
                entries, timing = out
                point = pending_final[index]
                results[point] = entries
                timer.merge(timing)
                key = rung_key(point, lib_tag)
                point_cache.put(key, entries)
                manifest.mark(key, "done")
                manifest.save()

            def on_final_failed(index, item, failed):
                point = pending_final[index]
                failures[point] = failed
                key = rung_key(point, lib_tag)
                manifest.mark(key, "quarantined"
                              if failed.kind == "permanent" else "failed",
                              failed)
                manifest.save()

            def serial_final(item):
                spec, _root = item
                return _finalize_point(gen, contexts, point_cache, spec)

            run_pool(
                _final_task, serial_final, items,
                lambda item: f"{describe_point(cfg, item[0][0])} (final)",
                on_final_done, on_final_failed)

        survivors = [p for p in cohort if p in results]
        report.quarantined = len(failures)
        report.survivors = [describe_point(cfg, p) for p in survivors]
        self.last_report = report

        library = Library(metadata={
            "dataset": cfg.dataset,
            "num_classes": gen.num_classes,
            "width_scale": cfg.width_scale,
            "resource_width_scale": cfg.resource_width_scale,
            "quant": cfg.quant.name,
            "cache_key": cfg.cache_key(),
            **({"precisions": list(cfg.precisions)}
               if list(cfg.precisions) != ["base"] else {}),
            **({"criteria": list(cfg.criteria)}
               if list(cfg.criteria) != ["l1"] else {}),
            **({"schedules": list(cfg.schedules)}
               if list(cfg.schedules) != ["hard"] else {}),
            **({"zero_skip": True} if cfg.zero_skip else {}),
            # Deterministic search summary only — per-run counters (how
            # much was cached vs. trained here) live in the report, so
            # resumed runs stay byte-identical to uninterrupted ones.
            "halving": {
                "min_epochs": self.halving.min_epochs,
                "eta": self.halving.eta,
                "extra_keep": self.halving.extra_keep,
                "keep_schedule_twins": self.halving.keep_schedule_twins,
                "rungs": [dict(r) for r in report.rungs],
            },
        })
        for point in points:
            for entry in results.get(point, ()):
                library.add(entry)
        if failures:
            library.metadata["quarantined"] = [
                {"variant": point[0][0], "pruned_exits": point[0][1],
                 "rate": point[1],
                 **({"precision": point[2]} if point[2] != "base" else {}),
                 **({"criterion": point[3]} if point[3] != "l1" else {}),
                 **({"schedule": point[4]} if point[4] != "hard" else {}),
                 **failures[point].to_dict()}
                for point in points if point in failures]
        log(f"[{cfg.dataset}] halving search complete: "
            f"{len(survivors)}/{len(points)} points characterized, "
            f"{report.epochs_total} training epochs total "
            f"(exhaustive: {report.exhaustive_epochs})")
        return library

    # ------------------------------------------------------------------
    def _promote(self, cohort: list, scores: dict,
                 protect_twins: bool | None = None) -> list:
        """Keep the Pareto front (plus margin) or 1/eta, whichever is more.

        Preference order: Pareto rank, then accuracy (descending), then
        cycles (ascending), then original sweep position — all
        deterministic. Kept points retain their sweep order.

        ``protect_twins`` overrides the config's ``keep_schedule_twins``
        for this promotion; the run loop disables protection once the
        next rung enters the top half of the budget, where accuracy is
        trustworthy enough to pick between schedule twins.
        """
        if protect_twins is None:
            protect_twins = self.halving.keep_schedule_twins
        pairs = [(float(scores[p]["accuracy"]), float(scores[p]["cycles"]))
                 for p in cohort]
        ranks = pareto_ranks(pairs)
        front = sum(1 for r in ranks if r == 0)
        keep = min(len(cohort),
                   max(math.ceil(len(cohort) / self.halving.eta),
                       front + self.halving.extra_keep))
        order = sorted(range(len(cohort)),
                       key=lambda i: (ranks[i], -pairs[i][0],
                                      pairs[i][1], i))
        kept = set(order[:keep])
        if protect_twins:
            # Same variant/rate/precision/criterion, different schedule:
            # identical bitstream, so low-fidelity accuracy alone would
            # decide between them — carry the twins instead.
            kept_ids = {cohort[i][:4] for i in kept}
            kept |= {i for i, p in enumerate(cohort) if p[:4] in kept_ids}
        return [p for i, p in enumerate(cohort) if i in kept]
