"""The AdaPEx design-time Library Generator (paper Fig. 3, left).

Pipeline per generated model:

1. **Early-Exit Training** — attach the configured exits to CNV and train
   all exits jointly (BranchyNet loss, first exit weighted 1.0, others 0.3).
2. **Dataflow-Aware Pruning** — sweep the pruning rate, each point pruned
   under the FINN folding constraints and retrained.
3. **CNN Compilation & HLS Synthesis** — export to the IR, streamline,
   and compile to a dataflow accelerator; extract resources, per-exit
   latency, serving throughput, power, and energy.
4. **Library assembly** — one entry per (accelerator, confidence
   threshold) with the accuracy and exit statistics measured on the test
   set.

Two model "twins" are used per design point (see DESIGN.md): a scaled
*accuracy twin* that is actually trained, and a full-width *hardware
twin* (never trained — resource and timing figures depend only on the
architecture) characterized through the FINN-like flow.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..data.augment import standard_augmentation
from ..data.synthetic import make_dataset
from ..finn.compile import compile_accelerator
from ..finn.folding import cnv_reference_fold, fold_constraints
from ..finn.performance import PerformanceModel
from ..ir.export import export_model
from ..ir.passes import streamline
from ..models.cnv import CNVConfig, build_cnv
from ..models.exits import ExitsConfiguration
from ..nn.trainer import Trainer, cascade_sweep, evaluate_exits
from ..pruning.pruner import prune_model
from ..runtime.library import AcceleratorId, Library, LibraryEntry
from .config import AdaPExConfig

__all__ = ["LibraryGenerator"]


class LibraryGenerator:
    """Generates the Library the Runtime Manager searches."""

    def __init__(self, config: AdaPExConfig | None = None):
        self.config = config or AdaPExConfig()
        self._train = None
        self._test = None
        self._base_cache: dict = {}

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def datasets(self):
        if self._train is None:
            cfg = self.config
            self._train, self._test = make_dataset(
                cfg.dataset, cfg.train_samples, cfg.test_samples,
                seed=cfg.seed)
        return self._train, self._test

    @property
    def num_classes(self) -> int:
        train, _ = self.datasets()
        return train.spec.num_classes

    # ------------------------------------------------------------------
    # model construction / training
    # ------------------------------------------------------------------
    def _build(self, exits_cfg: ExitsConfiguration, width: float):
        cfg = self.config
        return build_cnv(
            CNVConfig(num_classes=self.num_classes, width_scale=width,
                      quant=cfg.quant, seed=cfg.seed),
            exits_cfg,
        )

    def train_base_model(self, exits_cfg: ExitsConfiguration):
        """Build and jointly train the scaled accuracy twin.

        Training depends only on the exit *topology*, not on the pruned
        flags, so the trained base is cached and shared between the
        "pruned exits" and "not pruned exits" sweeps.
        """
        cfg = self.config
        key = tuple((e.after_block, e.conv_channels, e.fc_width)
                    for e in exits_cfg.exits)
        if key in self._base_cache:
            return self._base_cache[key]
        train, _ = self.datasets()
        model = self._build(exits_cfg, cfg.width_scale)
        trainer = Trainer(model, cfg.initial_training)
        augment = standard_augmentation() if cfg.use_augmentation else None
        trainer.fit(train.images, train.labels, augment=augment)
        self._base_cache[key] = model
        return model

    # ------------------------------------------------------------------
    # characterization of one design point
    # ------------------------------------------------------------------
    def _characterize(self, variant: str, pruned_exits: bool, rate: float,
                      scaled_base, hw_base, scaled_constraints,
                      hw_constraints, folding) -> list[LibraryEntry]:
        cfg = self.config
        train, test = self.datasets()

        # Accuracy twin: prune + retrain.
        scaled, report = prune_model(scaled_base, rate,
                                     constraints=scaled_constraints,
                                     prune_exits=pruned_exits)
        if rate > 0 and cfg.retraining.epochs > 0:
            Trainer(scaled, cfg.retraining).fit(train.images, train.labels)
        scaled.eval()

        # Hardware twin: prune (no training needed) + compile.
        hw, hw_report = prune_model(hw_base, rate,
                                    constraints=hw_constraints,
                                    prune_exits=pruned_exits)
        graph = export_model(hw)
        streamline(graph)
        accel = compile_accelerator(graph, folding, clock_mhz=cfg.clock_mhz)
        resources = accel.resources()
        cfg.device.check(resources)
        perf = PerformanceModel(accel)
        latencies = perf.latencies_s()

        accel_id = AcceleratorId(pruning_rate=rate, pruned_exits=pruned_exits,
                                 variant=variant)

        if scaled.num_exits == 1:
            exit_acc = evaluate_exits(scaled, test.images, test.labels)
            sweep = [{"confidence_threshold": 1.0,
                      "accuracy": exit_acc[0], "exit_rates": (1.0,)}]
        else:
            sweep = cascade_sweep(scaled, test.images, test.labels,
                                  cfg.confidence_thresholds)

        entries = []
        for point in sweep:
            rates = point["exit_rates"]
            serving = perf.serving_capacity_ips(rates, inflight=cfg.inflight)
            avg_latency = perf.average_latency_s(rates)
            energy = cfg.power_model.energy_per_inference_j(accel, rates)
            idle = cfg.power_model.average_power_w(accel, rates, 0.0)
            busy = cfg.power_model.average_power_w(accel, rates, serving)
            entries.append(LibraryEntry(
                accelerator=accel_id,
                confidence_threshold=point["confidence_threshold"],
                accuracy=point["accuracy"],
                exit_rates=rates,
                latency_s=avg_latency,
                serving_ips=serving,
                energy_per_inference_j=energy,
                power_idle_w=idle,
                power_busy_w=busy,
                achieved_pruning_rate=report.achieved_rate,
                exit_latencies_s=tuple(latencies),
                resources={"lut": resources.lut, "ff": resources.ff,
                           "bram18": resources.bram18},
                extra={
                    "requested_rate": rate,
                    "hw_achieved_rate": hw_report.achieved_rate,
                    "params": scaled.param_count(),
                },
            ))
        return entries

    # ------------------------------------------------------------------
    # the full sweep
    # ------------------------------------------------------------------
    def _variants(self):
        cfg = self.config
        variants = [("ee", cfg.exits.with_pruned(True), True)]
        if cfg.include_not_pruned_exits and cfg.exits.num_early_exits:
            variants.append(("ee", cfg.exits.with_pruned(False), False))
        if cfg.include_backbone_variant:
            variants.append(("backbone", ExitsConfiguration.none(), True))
        return variants

    def generate(self, progress=None) -> Library:
        """Run the full design-time flow; returns the populated Library."""
        cfg = self.config
        log = progress or (lambda msg: None)
        library = Library(metadata={
            "dataset": cfg.dataset,
            "num_classes": self.num_classes,
            "width_scale": cfg.width_scale,
            "resource_width_scale": cfg.resource_width_scale,
            "quant": cfg.quant.name,
            "cache_key": cfg.cache_key(),
        })

        for variant, exits_cfg, pruned_exits in self._variants():
            label = accel_label(variant, pruned_exits)
            log(f"[{cfg.dataset}] training base model ({label})")
            scaled_base = self.train_base_model(exits_cfg)
            hw_base = self._build(exits_cfg, cfg.resource_width_scale)
            folding = cnv_reference_fold(hw_base)
            hw_constraints = fold_constraints(hw_base, folding)
            scaled_constraints = fold_constraints(
                scaled_base, cnv_reference_fold(scaled_base))

            def one_rate(rate, _variant=variant, _pruned=pruned_exits,
                         _scaled=scaled_base, _hw=hw_base,
                         _sc=scaled_constraints, _hc=hw_constraints,
                         _fold=folding):
                return self._characterize(_variant, _pruned, rate, _scaled,
                                          _hw, _sc, _hc, _fold)

            if cfg.parallel_workers > 1:
                with ThreadPoolExecutor(cfg.parallel_workers) as pool:
                    batches = list(pool.map(one_rate, cfg.pruning_rates))
            else:
                batches = []
                for rate in cfg.pruning_rates:
                    log(f"[{cfg.dataset}] {label}: pruning rate {rate:.0%}")
                    batches.append(one_rate(rate))
            for batch in batches:
                for entry in batch:
                    library.add(entry)
        log(f"[{cfg.dataset}] library complete: {len(library)} entries")
        return library


def accel_label(variant: str, pruned_exits: bool) -> str:
    if variant == "backbone":
        return "backbone (no exits)"
    return "early-exit, {} exits".format("pruned" if pruned_exits
                                         else "not-pruned")
