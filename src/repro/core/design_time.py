"""The AdaPEx design-time Library Generator (paper Fig. 3, left).

Pipeline per generated model:

1. **Early-Exit Training** — attach the configured exits to CNV and train
   all exits jointly (BranchyNet loss, first exit weighted 1.0, others 0.3).
2. **Dataflow-Aware Pruning** — sweep the pruning rate, each point pruned
   under the FINN folding constraints and retrained.
3. **CNN Compilation & HLS Synthesis** — export to the IR, streamline,
   and compile to a dataflow accelerator; extract resources, per-exit
   latency, serving throughput, power, and energy.
4. **Library assembly** — one entry per (accelerator, confidence
   threshold) with the accuracy and exit statistics measured on the test
   set.

Two model "twins" are used per design point (see DESIGN.md): a scaled
*accuracy twin* that is actually trained, and a full-width *hardware
twin* (never trained — resource and timing figures depend only on the
architecture) characterized through the FINN-like flow.

Execution model
---------------
The sweep is a flat list of independent design points ``(variant,
pruned_exits, rate, precision)`` — the precision axis applies
post-training quantization (e.g. INT8) on top of each pruned model. With ``config.parallel_workers > 1`` the points
run on a process pool (:mod:`repro.core.parallel` — the work is NumPy
Python loops that hold the GIL, so threads cannot help): the base models
are trained once in the parent, their weights shipped to each worker via
:func:`repro.nn.serialize.state_arrays`, and every worker reconstructs
datasets and twins once in its initializer. Results are merged in
deterministic sweep order, so parallel libraries are bit-identical to
serial ones. A :class:`~repro.core.pointcache.PointCache` can additionally
skip any point characterized by a previous (possibly interrupted) sweep.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from ..data.augment import standard_augmentation
from ..data.synthetic import make_dataset
from ..finn.compile import compile_accelerator
from ..finn.folding import cnv_reference_fold, fold_constraints
from ..finn.performance import PerformanceModel
from ..ir.export import export_model
from ..ir.passes import streamline
from ..models.cnv import CNVConfig, build_cnv
from ..models.exits import ExitsConfiguration
from ..nn.quant import post_training_quantize
from ..nn.serialize import load_state_arrays, state_arrays
from ..nn.shmstate import publish_state_arrays, receive_state_arrays
from ..nn.trainer import Trainer, cascade_sweep, evaluate_exits
from ..pruning.pruner import prune_model
from ..pruning.ranking import HAPMCriterion, get_criterion
from ..pruning.schedule import psfp_prune_retrain
from ..runtime.library import AcceleratorId, Library, LibraryEntry
from .checkpoint import SweepManifest
from .config import AdaPExConfig
from .instrument import PhaseTimer
from .parallel import fork_available
from .pointcache import PointCache
from .supervise import SuperviseConfig, SupervisedPool

__all__ = ["LibraryGenerator", "accel_label"]


@dataclass
class _VariantContext:
    """Everything one variant's per-rate characterizations share."""

    variant: str
    pruned_exits: bool
    scaled_base: object
    hw_base: object
    scaled_constraints: dict
    hw_constraints: dict
    folding: object
    # CONV layer name -> per-frame cycle cost of its MVTU in the compiled
    # *unpruned* accelerator. Only populated when the sweep uses the
    # hardware-aware criterion; empty otherwise.
    layer_costs: dict = None

    @property
    def key(self) -> tuple:
        return (self.variant, self.pruned_exits)

    @property
    def label(self) -> str:
        return accel_label(self.variant, self.pruned_exits)


def sweep_points(cfg: AdaPExConfig, variants) -> list:
    """The sweep as a flat, deterministically ordered point list.

    Each point is ``(variant_key, rate, precision, criterion, schedule)``.
    At rate 0 neither the criterion nor the schedule can matter (nothing
    is pruned or retrained), so those points are canonicalized to
    ``("l1", "hard")`` — one point instead of ``criteria x schedules``
    duplicates, and old single-axis caches keep hitting.
    """
    points = []
    for key in variants:
        for rate in cfg.pruning_rates:
            for prec in cfg.precisions:
                if rate == 0:
                    points.append((key, rate, prec, "l1", "hard"))
                    continue
                for crit in cfg.criteria:
                    for sched in cfg.schedules:
                        points.append((key, rate, prec, crit, sched))
    return points


def describe_point(cfg: AdaPExConfig, point) -> str:
    """Human-readable log label of one sweep point."""
    key, rate, prec, crit, sched = point
    tags = [t for t in (prec if prec != "base" else "",
                        crit if crit != "l1" else "",
                        sched if sched != "hard" else "") if t]
    tag = f" [{', '.join(tags)}]" if tags else ""
    return (f"[{cfg.dataset}] {accel_label(*key)}: pruning "
            f"rate {rate:.0%}{tag}")


class LibraryGenerator:
    """Generates the Library the Runtime Manager searches."""

    def __init__(self, config: AdaPExConfig | None = None):
        self.config = config or AdaPExConfig()
        self._train = None
        self._test = None
        self._base_cache: dict = {}
        # Guards datasets() and train_base_model() so concurrent
        # generation (two variants racing from different threads) never
        # double-builds the shared dataset or double-trains a base model.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def datasets(self):
        with self._lock:
            if self._train is None:
                cfg = self.config
                self._train, self._test = make_dataset(
                    cfg.dataset, cfg.train_samples, cfg.test_samples,
                    seed=cfg.seed)
            return self._train, self._test

    @property
    def num_classes(self) -> int:
        train, _ = self.datasets()
        return train.spec.num_classes

    # ------------------------------------------------------------------
    # model construction / training
    # ------------------------------------------------------------------
    def _build(self, exits_cfg: ExitsConfiguration, width: float):
        cfg = self.config
        return build_cnv(
            CNVConfig(num_classes=self.num_classes, width_scale=width,
                      quant=cfg.quant, seed=cfg.seed),
            exits_cfg,
        )

    @staticmethod
    def _topology_key(exits_cfg: ExitsConfiguration) -> tuple:
        """Cache key for trained bases: the exit *topology* only."""
        return tuple((e.after_block, e.conv_channels, e.fc_width)
                     for e in exits_cfg.exits)

    def train_base_model(self, exits_cfg: ExitsConfiguration):
        """Build and jointly train the scaled accuracy twin.

        Training depends only on the exit *topology*, not on the pruned
        flags, so the trained base is cached and shared between the
        "pruned exits" and "not pruned exits" sweeps.
        """
        cfg = self.config
        key = self._topology_key(exits_cfg)
        with self._lock:
            if key in self._base_cache:
                return self._base_cache[key]
            train, _ = self.datasets()
            model = self._build(exits_cfg, cfg.width_scale)
            if cfg.compute_dtype != "float64":
                model.astype(cfg.np_dtype)
            trainer = Trainer(model, cfg.initial_training)
            augment = standard_augmentation() if cfg.use_augmentation else None
            trainer.fit(train.images, train.labels, augment=augment)
            self._base_cache[key] = model
            return model

    def _variant_context(self, variant: str, exits_cfg: ExitsConfiguration,
                         pruned_exits: bool, scaled_base) -> _VariantContext:
        """Prepare the per-variant state the per-rate points share."""
        cfg = self.config
        hw_base = self._build(exits_cfg, cfg.resource_width_scale)
        folding = cnv_reference_fold(hw_base)
        layer_costs = {}
        if "hapm" in cfg.criteria:
            # The hardware-aware criterion weights each filter by its
            # layer's per-frame cycle cost in the FINN model. Compile the
            # unpruned hardware twin once per variant and read the MVTU
            # cycle counts off the compiled modules.
            graph = export_model(hw_base)
            streamline(graph)
            accel = compile_accelerator(graph, folding,
                                        clock_mhz=cfg.clock_mhz,
                                        zero_skip=cfg.zero_skip)
            layer_costs = _mvtu_layer_costs(accel)
        return _VariantContext(
            variant=variant,
            pruned_exits=pruned_exits,
            scaled_base=scaled_base,
            hw_base=hw_base,
            scaled_constraints=fold_constraints(
                scaled_base, cnv_reference_fold(scaled_base)),
            hw_constraints=fold_constraints(hw_base, folding),
            folding=folding,
            layer_costs=layer_costs,
        )

    def _resolve_criterion(self, ctx: _VariantContext, criterion: str):
        """Registry lookup, binding HAPM to this variant's layer costs."""
        if criterion == "hapm":
            return HAPMCriterion(ctx.layer_costs or {})
        return get_criterion(criterion)

    # ------------------------------------------------------------------
    # characterization of one design point
    # ------------------------------------------------------------------
    def _characterize(self, ctx: _VariantContext, rate: float,
                      precision: str = "base",
                      timer: PhaseTimer | None = None,
                      criterion: str = "l1", schedule: str = "hard",
                      scaled_override=None) -> list[LibraryEntry]:
        cfg = self.config
        timer = timer or PhaseTimer()
        train, test = self.datasets()
        crit = self._resolve_criterion(ctx, criterion)

        if scaled_override is not None:
            # The successive-halving engine hands in an already trained
            # (and pruned) accuracy twin plus its prune report; nothing
            # is retrained here.
            scaled, report = scaled_override
        elif schedule == "psfp" and rate > 0 and cfg.retraining.epochs > 0:
            with timer.phase("retrain"):
                result = psfp_prune_retrain(
                    ctx.scaled_base, rate, train.images, train.labels,
                    retrain=cfg.retraining,
                    constraints=ctx.scaled_constraints,
                    prune_exits=ctx.pruned_exits, criterion=crit)
                timer.add("epochs", 0.0, cfg.retraining.epochs)
            scaled, report = result.model, result.report
        else:
            # Hard schedule: prune once, then retrain the narrow model.
            with timer.phase("prune"):
                scaled, report = prune_model(
                    ctx.scaled_base, rate,
                    constraints=ctx.scaled_constraints,
                    prune_exits=ctx.pruned_exits, criterion=crit)
            if rate > 0 and cfg.retraining.epochs > 0:
                with timer.phase("retrain"):
                    Trainer(scaled, cfg.retraining).fit(train.images,
                                                        train.labels)
                    timer.add("epochs", 0.0, cfg.retraining.epochs)
        # Precision axis: re-quantize both twins after prune/retrain
        # (PTQ — the latent weights are final by now).
        spec = cfg.precision_spec(precision)
        if spec is not None:
            scaled = post_training_quantize(scaled, spec.weight_bits,
                                            spec.act_bits)
        scaled.eval()

        # Hardware twin: prune (no training needed) + compile.
        with timer.phase("prune"):
            hw, hw_report = prune_model(ctx.hw_base, rate,
                                        constraints=ctx.hw_constraints,
                                        prune_exits=ctx.pruned_exits,
                                        criterion=crit)
        if spec is not None:
            hw = post_training_quantize(hw, spec.weight_bits, spec.act_bits)
        with timer.phase("compile"):
            graph = export_model(hw)
            streamline(graph)
            accel = compile_accelerator(graph, ctx.folding,
                                        clock_mhz=cfg.clock_mhz,
                                        zero_skip=cfg.zero_skip)
            resources = accel.resources()
            cfg.device.check(resources)
            perf = PerformanceModel(accel)
            latencies = perf.latencies_s()

        accel_id = AcceleratorId(pruning_rate=rate,
                                 pruned_exits=ctx.pruned_exits,
                                 variant=ctx.variant,
                                 precision=precision,
                                 criterion=criterion,
                                 schedule=schedule)

        with timer.phase("characterize"):
            # Accuracy measurement runs on the compiled engine: export
            # the accuracy twin, streamline, and execute the fused plan
            # (function-preserving, so the measured accuracies match the
            # nn-layer forward; ir.executors stays the semantics oracle).
            scaled_graph = export_model(scaled)
            streamline(scaled_graph)
            plan = scaled_graph.compile(dtype=cfg.np_dtype, timer=timer)
            if plan.num_exits == 1:
                exit_acc = evaluate_exits(plan, test.images, test.labels)
                sweep = [{"confidence_threshold": 1.0,
                          "accuracy": exit_acc[0], "exit_rates": (1.0,)}]
            else:
                sweep = cascade_sweep(plan, test.images, test.labels,
                                      cfg.confidence_thresholds)

            entries = []
            for point in sweep:
                rates = point["exit_rates"]
                serving = perf.serving_capacity_ips(rates,
                                                    inflight=cfg.inflight)
                avg_latency = perf.average_latency_s(rates)
                energy = cfg.power_model.energy_per_inference_j(accel, rates)
                idle = cfg.power_model.average_power_w(accel, rates, 0.0)
                busy = cfg.power_model.average_power_w(accel, rates, serving)
                entries.append(LibraryEntry(
                    accelerator=accel_id,
                    confidence_threshold=point["confidence_threshold"],
                    accuracy=point["accuracy"],
                    exit_rates=rates,
                    latency_s=avg_latency,
                    serving_ips=serving,
                    energy_per_inference_j=energy,
                    power_idle_w=idle,
                    power_busy_w=busy,
                    achieved_pruning_rate=report.achieved_rate,
                    exit_latencies_s=tuple(latencies),
                    resources={"lut": resources.lut, "ff": resources.ff,
                               "bram18": resources.bram18},
                    extra=dict(
                        {"requested_rate": rate,
                         "hw_achieved_rate": hw_report.achieved_rate,
                         "params": scaled.param_count()},
                        # Only non-default axes annotate extra, keeping
                        # pre-axis entry dicts (and golden traces) stable.
                        **({"precision": precision}
                           if precision != "base" else {}),
                        **({"criterion": criterion}
                           if criterion != "l1" else {}),
                        **({"schedule": schedule}
                           if schedule != "hard" else {}),
                    ),
                ))
        return entries

    # ------------------------------------------------------------------
    # the full sweep
    # ------------------------------------------------------------------
    def _variants(self):
        cfg = self.config
        variants = [("ee", cfg.exits.with_pruned(True), True)]
        if cfg.include_not_pruned_exits and cfg.exits.num_early_exits:
            variants.append(("ee", cfg.exits.with_pruned(False), False))
        if cfg.include_backbone_variant:
            variants.append(("backbone", ExitsConfiguration.none(), True))
        return variants

    def generate(self, progress=None, point_cache=None,
                 timer: PhaseTimer | None = None,
                 supervise: SuperviseConfig | None = None) -> Library:
        """Run the full design-time flow; returns the populated Library.

        Parameters
        ----------
        progress:
            Optional ``callable(str)`` receiving per-step log lines (also
            routed from the parallel backend as points complete).
        point_cache:
            Optional :class:`~repro.core.pointcache.PointCache` (or a
            directory path) of previously characterized design points;
            hits skip prune/retrain/compile entirely. Enables the sweep
            checkpoint manifest (``manifest.json`` next to the cache):
            every completed point is persisted the moment it finishes, so
            a killed sweep resumes with zero recomputation, and
            quarantined points stay quarantined across resumes.
        timer:
            Optional :class:`PhaseTimer` accumulating per-phase wall time
            (train / prune / retrain / compile / characterize), including
            time spent inside worker processes.
        supervise:
            Optional :class:`~repro.core.supervise.SuperviseConfig`
            controlling per-point timeouts, retries, and backoff. The
            default retries transient failures and quarantines
            persistently failing points (recorded in the returned
            library's ``metadata["quarantined"]``) instead of aborting
            the sweep.
        """
        cfg = self.config
        log = progress or (lambda msg: None)
        timer = timer or PhaseTimer()
        supervise = supervise or SuperviseConfig()
        if isinstance(point_cache, (str, os.PathLike)):
            point_cache = PointCache(point_cache)
        library = Library(metadata={
            "dataset": cfg.dataset,
            "num_classes": self.num_classes,
            "width_scale": cfg.width_scale,
            "resource_width_scale": cfg.resource_width_scale,
            "quant": cfg.quant.name,
            "cache_key": cfg.cache_key(),
            # Conditional so pre-precision-axis metadata (pinned by the
            # golden trace) is unchanged at the defaults.
            **({"precisions": list(cfg.precisions)}
               if list(cfg.precisions) != ["base"] else {}),
            **({"criteria": list(cfg.criteria)}
               if list(cfg.criteria) != ["l1"] else {}),
            **({"schedules": list(cfg.schedules)}
               if list(cfg.schedules) != ["hard"] else {}),
            **({"zero_skip": True} if cfg.zero_skip else {}),
        })

        variants = {(variant, pruned_exits): exits_cfg
                    for variant, exits_cfg, pruned_exits in self._variants()}

        # The sweep as a flat, deterministically ordered point list:
        # (variant key, pruning rate, precision, criterion, schedule).
        points = sweep_points(cfg, variants)

        def _describe(point):
            return describe_point(cfg, point)

        manifest = None
        point_keys: dict = {}
        if point_cache is not None:
            config_key = cfg.point_cache_key()
            point_keys = {
                point: PointCache.point_key(config_key, point[0][0],
                                            point[0][1], point[1],
                                            point[2], point[3], point[4])
                for point in points}
            manifest = SweepManifest.open(
                point_cache.root / "manifest.json", config_key)

        results: dict = {}
        failures: dict = {}  # point -> FailedPoint (this run or resumed)
        pending = []
        for point in points:
            key, rate, prec, crit, sched = point
            pkey = point_keys.get(point)
            if manifest is not None:
                manifest.ensure(pkey, key[0], key[1], rate, prec,
                                crit, sched)
            cached = point_cache.get(pkey) if point_cache is not None \
                else None
            if cached is not None:
                results[point] = cached
                if manifest.status(pkey) != "done":
                    manifest.mark(pkey, "done")
                log(f"{_describe(point)} (cached)")
            elif manifest is not None \
                    and manifest.status(pkey) == "quarantined":
                failed = manifest.failure(pkey)
                failures[point] = failed
                log(f"{_describe(point)} skipped "
                    f"(quarantined: {failed.reason()})")
            else:
                pending.append(point)
        if manifest is not None:
            manifest.save()

        # Base models (the expensive training) are only needed for
        # variants that still have uncached points — a fully warm cache
        # rerun trains nothing at all.
        contexts: dict[tuple, _VariantContext] = {}
        for key in variants:
            if any(p[0] == key for p in pending):
                log(f"[{cfg.dataset}] training base model "
                    f"({accel_label(*key)})")
                with timer.phase("train"):
                    scaled_base = self.train_base_model(variants[key])
                contexts[key] = self._variant_context(
                    key[0], variants[key], key[1], scaled_base)

        def point_label(point):
            return _describe(point)

        # Checkpoint every completion immediately: a sweep killed at any
        # instant loses at most the points that were in flight.
        def on_point_done(index, point, entries):
            results[point] = entries
            if point_cache is not None:
                point_cache.put(point_keys[point], entries)
                manifest.mark(point_keys[point], "done")
                manifest.save()

        def on_point_failed(index, point, failed):
            failures[point] = failed
            if manifest is not None:
                # Permanent failures stay quarantined across resumes;
                # exhausted transient/timeout/crash budgets are retried
                # by the next resume.
                status = "quarantined" if failed.kind == "permanent" \
                    else "failed"
                manifest.mark(point_keys[point], status, failed)
                manifest.save()

        workers = min(cfg.parallel_workers, len(pending))
        if workers > 1 and fork_available():
            base_states = {topo: state_arrays(model)
                           for topo, model in self._base_cache.items()}
            # Weights travel through one shared-memory block instead of
            # being pickled once per worker; the shipment must outlive
            # the whole run because the supervisor may recreate pools
            # (and re-run the initializer) after worker crashes.
            shipment = publish_state_arrays(base_states)
            try:
                pool = SupervisedPool(
                    workers=workers, config=supervise, progress=log,
                    label=point_label, initializer=_parallel_worker_init,
                    initargs=(cfg, shipment.payload))
                pool.run(
                    _characterize_task, pending,
                    on_result=lambda i, point, out: (
                        timer.merge(out[1]),
                        on_point_done(i, point, out[0])),
                    on_failure=on_point_failed)
            finally:
                shipment.close()
        else:
            pool = SupervisedPool(workers=1, config=supervise,
                                  progress=log, label=point_label)

            def characterize_point(point):
                key, rate, prec, crit, sched = point
                return self._characterize(contexts[key], rate,
                                          precision=prec, timer=timer,
                                          criterion=crit, schedule=sched)

            pool.run(characterize_point, pending,
                     on_result=on_point_done,
                     on_failure=on_point_failed)

        for point in points:
            for entry in results.get(point, ()):
                library.add(entry)
        if failures:
            library.metadata["quarantined"] = [
                {"variant": point[0][0], "pruned_exits": point[0][1],
                 "rate": point[1],
                 **({"precision": point[2]} if point[2] != "base" else {}),
                 **({"criterion": point[3]} if point[3] != "l1" else {}),
                 **({"schedule": point[4]} if point[4] != "hard" else {}),
                 **failures[point].to_dict()}
                for point in points if point in failures]
            log(f"[{cfg.dataset}] library partial: {len(library)} entries,"
                f" {len(failures)} design point(s) quarantined")
        else:
            log(f"[{cfg.dataset}] library complete: {len(library)} "
                f"entries")
        return library


# ----------------------------------------------------------------------
# process-pool worker side
# ----------------------------------------------------------------------
# Populated once per worker by the pool initializer: a LibraryGenerator
# whose datasets and base models were reconstructed from the parent's
# shipped weights, plus the prepared per-variant contexts.
_WORKER_STATE: tuple | None = None


def _parallel_worker_init(config: AdaPExConfig, base_states: dict) -> None:
    """Rebuild datasets, twins, and fold constraints once per worker.

    ``base_states`` is either a :func:`~repro.nn.shmstate.publish_state_arrays`
    payload (the usual case: weights read as zero-copy shared-memory
    views) or a plain ``{topology: state_arrays}`` dict. Either way it
    maps each exit-topology key to the trained base's snapshot, so
    workers never retrain — they rebuild the architecture (deterministic
    from the config seed) and load the parent's exact weights.
    """
    global _WORKER_STATE
    if isinstance(base_states, dict) \
            and base_states.get("kind") in ("shm", "pickle"):
        base_states, release = receive_state_arrays(base_states)
    else:
        release = lambda: None  # noqa: E731 - trivial no-op
    gen = LibraryGenerator(config)
    for topo, arrays in base_states.items():
        for variant, exits_cfg, pruned_exits in gen._variants():
            if gen._topology_key(exits_cfg) == topo:
                model = gen._build(exits_cfg, config.width_scale)
                if config.compute_dtype != "float64":
                    model.astype(config.np_dtype)
                load_state_arrays(model, arrays)
                gen._base_cache[topo] = model
                break
    # Weights are copied into the models above; drop the shared-memory
    # views before anything long-lived happens in this worker.
    release()
    # Only variants whose trained base was shipped get a context: on a
    # partial resume the parent trains (and ships) just the variants
    # with pending points, and workers must not retrain the others.
    contexts = {}
    for variant, exits_cfg, pruned_exits in gen._variants():
        if gen._topology_key(exits_cfg) not in gen._base_cache:
            continue
        scaled_base = gen.train_base_model(exits_cfg)  # cache hit, no fit
        contexts[(variant, pruned_exits)] = gen._variant_context(
            variant, exits_cfg, pruned_exits, scaled_base)
    _WORKER_STATE = (gen, contexts)


def _characterize_task(point):
    """Characterize one ``((variant, pruned_exits), rate, precision,
    criterion, schedule)`` work unit."""
    variant_key, rate, precision, criterion, schedule = point
    gen, contexts = _WORKER_STATE
    timer = PhaseTimer()
    entries = gen._characterize(contexts[variant_key], rate,
                                precision=precision, timer=timer,
                                criterion=criterion, schedule=schedule)
    return entries, timer.as_dict()


def _mvtu_layer_costs(accel) -> dict:
    """Per-frame cycle cost of every MVTU, keyed by bare layer name.

    Module names carry the IR scope prefix (``seg0/b0_conv0.mvtu``);
    pruning ranks layers by their bare names (``b0_conv0``), so the
    prefix and the ``.mvtu`` suffix are stripped. FC layers come along
    harmlessly — the pruner only looks up CONV names.
    """
    costs = {}
    for module in accel.modules:
        if module.name.endswith(".mvtu"):
            bare = module.name[:-len(".mvtu")].split("/")[-1]
            costs[bare] = float(module.cycles())
    return costs


def accel_label(variant: str, pruned_exits: bool) -> str:
    if variant == "backbone":
        return "backbone (no exits)"
    return "early-exit, {} exits".format("pruned" if pruned_exits
                                         else "not-pruned")
