"""Scoped-timer instrumentation for the expensive phases.

A :class:`PhaseTimer` accumulates wall time per named phase (``train``,
``prune``, ``retrain``, ``compile``, ``characterize``, ``simulate``, ...)
across the design-time flow and the edge evaluation. Timers are cheap,
mergeable (worker processes time their own work and ship the totals back
to the parent), and serialize to the ``BENCH_*.json`` reports written
next to benchmark output so the performance trajectory is trackable
across PRs.

Usage::

    timer = PhaseTimer()
    with timer.phase("train"):
        trainer.fit(...)
    print(timer.summary())
    timer.write_json("BENCH_generate.json", extra={"dataset": "cifar10"})
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall-clock seconds and call counts per phase."""

    def __init__(self):
        self._lock = threading.Lock()
        self._phases: dict[str, list] = {}  # name -> [seconds, count]

    @contextmanager
    def phase(self, name: str):
        """Time one scoped block under ``name`` (re-entrant per name)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of wall time (``count`` invocations)."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        with self._lock:
            bucket = self._phases.setdefault(name, [0.0, 0])
            bucket[0] += seconds
            bucket[1] += count

    def merge(self, other, prefix: str = "") -> "PhaseTimer":
        """Fold another timer (or its ``as_dict()`` form) into this one.

        ``prefix`` namespaces the incoming phases (e.g. ``"engine_"``)
        so kernel-level timings can be told apart from orchestration
        phases in the merged report.
        """
        phases = other.get("phases", other) if isinstance(other, dict) \
            else other.as_dict()["phases"]
        for name, rec in phases.items():
            self.add(prefix + name, rec["seconds"], rec.get("count", 1))
        return self

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        with self._lock:
            return self._phases.get(name, [0.0, 0])[0]

    def count(self, name: str) -> int:
        with self._lock:
            return self._phases.get(name, [0.0, 0])[1]

    def total_seconds(self) -> float:
        with self._lock:
            return sum(rec[0] for rec in self._phases.values())

    def as_dict(self) -> dict:
        with self._lock:
            phases = {name: {"seconds": rec[0], "count": rec[1]}
                      for name, rec in sorted(self._phases.items())}
        return {"phases": phases,
                "total_s": sum(p["seconds"] for p in phases.values())}

    def summary(self, title: str = "phase timings") -> str:
        """Human-readable per-phase table (sorted by time, descending)."""
        data = self.as_dict()
        lines = [f"{title} (total {data['total_s']:.2f} s):"]
        ordered = sorted(data["phases"].items(),
                         key=lambda kv: -kv[1]["seconds"])
        for name, rec in ordered:
            lines.append(f"  {name:<14} {rec['seconds']:>9.3f} s  "
                         f"x{rec['count']}")
        if not ordered:
            lines.append("  (no phases recorded)")
        return "\n".join(lines)

    def write_json(self, path, extra: dict | None = None) -> dict:
        """Write the timing report as JSON (creating parent directories
        as needed); returns the written payload."""
        payload = dict(extra or {})
        payload.update(self.as_dict())
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
        return payload
