"""AdaPEx core: configuration, design-time generation, top-level facade,
plus the execution layer (process-parallel backend, per-design-point
cache, phase timing) and its crash-safety machinery (error taxonomy,
supervised pool, sweep checkpoint manifest)."""

from .errors import (
    IntegrityError,
    PermanentError,
    ReproError,
    TransientError,
    classify_error,
)
from .adapex import AdaPExFramework
from .checkpoint import SweepManifest
from .config import AdaPExConfig, paper_threshold_sweep
from .design_time import LibraryGenerator
from .explore import explore_exit_placements
from .halving import (
    HalvingConfig,
    HalvingReport,
    HalvingSearch,
    pareto_front,
    pareto_ranks,
)
from .instrument import PhaseTimer
from .parallel import fork_available, parallel_map, resolve_workers
from .pointcache import PointCache
from .supervise import (
    FailedPoint,
    SupervisedPool,
    SuperviseConfig,
    SweepOutcome,
)

__all__ = ["AdaPExFramework", "AdaPExConfig", "paper_threshold_sweep",
           "LibraryGenerator", "explore_exit_placements",
           "HalvingConfig", "HalvingReport", "HalvingSearch",
           "pareto_front", "pareto_ranks",
           "PhaseTimer", "PointCache",
           "fork_available", "parallel_map", "resolve_workers",
           "ReproError", "TransientError", "PermanentError",
           "IntegrityError", "classify_error",
           "SuperviseConfig", "SupervisedPool", "SweepOutcome",
           "FailedPoint", "SweepManifest"]
