"""AdaPEx core: configuration, design-time generation, top-level facade,
plus the execution layer (process-parallel backend, per-design-point
cache, phase timing)."""

from .adapex import AdaPExFramework
from .config import AdaPExConfig, paper_threshold_sweep
from .design_time import LibraryGenerator
from .explore import explore_exit_placements
from .instrument import PhaseTimer
from .parallel import fork_available, parallel_map, resolve_workers
from .pointcache import PointCache

__all__ = ["AdaPExFramework", "AdaPExConfig", "paper_threshold_sweep",
           "LibraryGenerator", "explore_exit_placements",
           "PhaseTimer", "PointCache",
           "fork_available", "parallel_map", "resolve_workers"]
