"""AdaPEx core: configuration, design-time generation, top-level facade."""

from .adapex import AdaPExFramework
from .config import AdaPExConfig, paper_threshold_sweep
from .design_time import LibraryGenerator
from .explore import explore_exit_placements

__all__ = ["AdaPExFramework", "AdaPExConfig", "paper_threshold_sweep",
           "LibraryGenerator", "explore_exit_placements"]
