"""Sweep checkpoint manifest: crash-safe progress record of a sweep.

The per-design-point cache (:mod:`repro.core.pointcache`) already makes
completed work *reusable*; the manifest makes the sweep's *state*
explicit. One JSON file next to the point cache records, per design
point, whether it is ``pending``, ``done``, ``failed`` (exhausted its
retry budget — retried on the next resume), or ``quarantined``
(permanently infeasible — skipped on resume, surfaced as a library gap).

Every mutation is persisted with an atomic write-temp-rename, so a
sweep killed at any instant leaves a readable manifest; ``repro-adapex
generate --resume`` (or simply rerunning with the same ``--point-cache``)
continues from exactly where the previous run stopped, recomputing
nothing that completed. The manifest is salted with the config's
``point_cache_key()``: a manifest written under different sweep
semantics is discarded, never trusted.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from .supervise import FailedPoint

__all__ = ["SweepManifest", "STATUSES"]

log = logging.getLogger(__name__)

# On-disk format version; bump on shape changes.
_MANIFEST_FORMAT = 1

STATUSES = ("pending", "done", "failed", "quarantined")


class SweepManifest:
    """Per-point status ledger of one design-time sweep."""

    def __init__(self, path, config_key: str, points: dict | None = None):
        self.path = Path(path)
        self.config_key = config_key
        # point key -> {"variant", "pruned_exits", "rate", "status",
        #               "failure": FailedPoint-dict | None}
        self.points: dict[str, dict] = dict(points or {})

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path, config_key: str) -> "SweepManifest":
        """Load the manifest at ``path`` or start a fresh one.

        A missing, corrupt, or differently-keyed manifest yields a fresh
        (empty) one — stale state is discarded, never half-trusted.
        """
        path = Path(path)
        try:
            with open(path) as f:
                raw = json.load(f)
            if not isinstance(raw, dict):
                raise ValueError("manifest root must be an object")
            if raw.get("format") != _MANIFEST_FORMAT:
                raise ValueError(f"unsupported format {raw.get('format')!r}")
            points = raw["points"]
            if not isinstance(points, dict):
                raise ValueError("manifest points must be an object")
            for key, rec in points.items():
                if not isinstance(rec, dict):
                    raise ValueError(
                        f"point {key}: record must be an object, got "
                        f"{type(rec).__name__}")
                if rec.get("status") not in STATUSES:
                    raise ValueError(
                        f"point {key}: bad status {rec.get('status')!r}")
        except FileNotFoundError:
            return cls(path, config_key)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("sweep manifest %s is unreadable (%s: %s); "
                        "starting fresh", path, type(exc).__name__, exc)
            return cls(path, config_key)
        if raw.get("config_key") != config_key:
            log.info("sweep manifest %s belongs to a different sweep "
                     "config; starting fresh", path)
            return cls(path, config_key)
        return cls(path, config_key, points)

    def save(self) -> None:
        """Atomically persist the manifest (write temp + rename)."""
        payload = {"format": _MANIFEST_FORMAT,
                   "config_key": self.config_key,
                   "points": self.points}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def ensure(self, key: str, variant: str, pruned_exits: bool,
               rate: float, precision: str = "base",
               criterion: str = "l1", schedule: str = "hard",
               fidelity: str = "full") -> None:
        """Register a point as ``pending`` if it has no record yet."""
        if key not in self.points:
            rec = {"variant": variant,
                   "pruned_exits": bool(pruned_exits),
                   "rate": rate, "status": "pending",
                   "failure": None}
            # Non-default axes only: keeps old manifests byte-compatible.
            if precision != "base":
                rec["precision"] = precision
            if criterion != "l1":
                rec["criterion"] = criterion
            if schedule != "hard":
                rec["schedule"] = schedule
            if fidelity != "full":
                rec["fidelity"] = fidelity
            self.points[key] = rec

    def mark(self, key: str, status: str,
             failure: FailedPoint | None = None) -> None:
        """Transition one point; ``failure`` annotates failed/quarantined."""
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        rec = self.points[key]
        rec["status"] = status
        rec["failure"] = failure.to_dict() if failure is not None else None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def status(self, key: str) -> str | None:
        rec = self.points.get(key)
        return rec["status"] if rec is not None else None

    def failure(self, key: str) -> FailedPoint | None:
        rec = self.points.get(key)
        if rec is None or rec.get("failure") is None:
            return None
        return FailedPoint.from_dict(rec["failure"])

    def counts(self) -> dict:
        """Points per status (every status present, possibly 0)."""
        out = {status: 0 for status in STATUSES}
        for rec in self.points.values():
            out[rec["status"]] += 1
        return out

    def keys_with_status(self, *statuses: str) -> list:
        return [key for key, rec in self.points.items()
                if rec["status"] in statuses]

    def summary(self) -> str:
        counts = self.counts()
        parts = ", ".join(f"{counts[s]} {s}" for s in STATUSES
                          if counts[s])
        return (f"sweep manifest: {len(self.points)} point(s)"
                + (f" ({parts})" if parts else ""))

    def __len__(self) -> int:
        return len(self.points)
