"""Top-level AdaPEx configuration.

Bundles every knob of the design-time flow: dataset, model scale,
quantization, exits, pruning-rate sweep, confidence-threshold sweep,
training budgets, and the hardware target. The paper's settings are the
defaults (18 pruning rates 0-85 %, thresholds 0-100 % in 5 % steps,
exits after blocks 1 and 2, ZCU104 at 100 MHz); the model/dataset scale
knobs exist because full-width CNV training is not feasible in pure
NumPy — see DESIGN.md's scale-down policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..finn.device import FPGADevice, ZCU104
from ..finn.power import PowerModel
from ..models.exits import ExitsConfiguration
from ..nn.quant import QuantSpec
from ..nn.trainer import TrainConfig
from ..pruning.schedule import paper_rate_sweep

__all__ = ["AdaPExConfig", "paper_threshold_sweep"]

# Bump when the design-time flow changes semantics (invalidates caches).
_FLOW_VERSION = 2


def paper_threshold_sweep() -> list[float]:
    """The paper's confidence thresholds: 0 to 100 % in 5 % steps."""
    return [round(0.05 * i, 2) for i in range(21)]


@dataclass
class AdaPExConfig:
    """Everything the Library Generator needs."""

    # -- dataset ---------------------------------------------------------
    dataset: str = "cifar10"
    train_samples: int = 1500
    test_samples: int = 500

    # -- model -----------------------------------------------------------
    width_scale: float = 0.25           # accuracy-twin width
    resource_width_scale: float = 1.0   # hardware-twin width
    quant: QuantSpec = field(default_factory=QuantSpec)
    exits: ExitsConfiguration = field(
        default_factory=ExitsConfiguration.paper_default)

    # -- design space ----------------------------------------------------
    pruning_rates: list = field(default_factory=paper_rate_sweep)
    confidence_thresholds: list = field(default_factory=paper_threshold_sweep)
    include_not_pruned_exits: bool = True
    include_backbone_variant: bool = True  # no-exit models (FINN / PR-Only)
    # Precision axis: each named precision multiplies the design space
    # (pruning rate x precision x threshold). "base" is the trained
    # QuantSpec (the paper's W2A2); any other name must appear in
    # :data:`repro.nn.quant.PRECISION_SPECS` and is applied to the trained
    # model by post-training quantization before characterization.
    precisions: list = field(default_factory=lambda: ["base"])
    # Pruning-criterion axis: each named criterion from
    # :data:`repro.pruning.ranking.CRITERIA` multiplies the design space.
    # "l1" is the paper's magnitude ranking; "fpgm" ranks by geometric-
    # median redundancy; "hapm" reallocates the removal budget toward
    # layers with high per-frame cycle cost in the FINN model.
    criteria: list = field(default_factory=lambda: ["l1"])
    # Retraining-schedule axis: "hard" (prune once, then retrain) and/or
    # "psfp" (progressive soft filter pruning — see
    # :mod:`repro.pruning.schedule`).
    schedules: list = field(default_factory=lambda: ["hard"])
    # Model zero-skipping MVTUs (cycle counts scale with weight density,
    # floored by control overhead) when compiling accelerators.
    zero_skip: bool = False

    # -- training --------------------------------------------------------
    initial_training: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=6, batch_size=64, lr=0.002))
    retraining: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=1, batch_size=64, lr=0.001))
    use_augmentation: bool = False

    # -- hardware --------------------------------------------------------
    device: FPGADevice = field(default_factory=lambda: ZCU104)
    clock_mhz: float = 100.0
    power_model: PowerModel = field(default_factory=PowerModel)
    inflight: int = 1  # frames in flight in the host serving loop

    # -- misc --------------------------------------------------------------
    seed: int = 0
    parallel_workers: int = 1
    # Compute precision of the NumPy substrate. "float64" (default) keeps
    # results bit-stable with the golden traces; "float32" roughly halves
    # memory traffic and doubles BLAS throughput at a small accuracy delta.
    compute_dtype: str = "float64"
    # Serving-simulator engine for evaluate_at_edge: "auto" uses the
    # vectorized fast path when provably bit-identical to the event loop
    # and falls back otherwise; "event"/"vector" force one engine. Not
    # part of the cache key — both engines produce identical metrics.
    sim_mode: str = "auto"

    def __post_init__(self):
        if self.train_samples < 1 or self.test_samples < 1:
            raise ValueError("sample counts must be positive")
        if not self.pruning_rates:
            raise ValueError("need at least one pruning rate")
        if any(not 0.0 <= r < 1.0 for r in self.pruning_rates):
            raise ValueError("pruning rates must be in [0, 1)")
        if not self.confidence_thresholds:
            raise ValueError("need at least one confidence threshold")
        if self.parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        if self.compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"compute_dtype must be 'float64' or 'float32', "
                f"got {self.compute_dtype!r}")
        if self.sim_mode not in ("auto", "event", "vector"):
            raise ValueError(
                f"sim_mode must be one of 'auto', 'event', 'vector', "
                f"got {self.sim_mode!r}")
        if not self.precisions:
            raise ValueError("need at least one precision")
        from ..nn.quant import PRECISION_SPECS
        for p in self.precisions:
            if p != "base" and p not in PRECISION_SPECS:
                raise ValueError(
                    f"unknown precision {p!r}: expected 'base' or one of "
                    f"{sorted(PRECISION_SPECS)}")
        if len(set(self.precisions)) != len(self.precisions):
            raise ValueError("duplicate precisions")
        from ..pruning.ranking import CRITERIA
        from ..pruning.schedule import SCHEDULES
        if not self.criteria:
            raise ValueError("need at least one pruning criterion")
        for c in self.criteria:
            if c not in CRITERIA:
                raise ValueError(
                    f"unknown pruning criterion {c!r}: expected one of "
                    f"{sorted(CRITERIA)}")
        if len(set(self.criteria)) != len(self.criteria):
            raise ValueError("duplicate criteria")
        if not self.schedules:
            raise ValueError("need at least one retraining schedule")
        for s in self.schedules:
            if s not in SCHEDULES:
                raise ValueError(
                    f"unknown retraining schedule {s!r}: expected one of "
                    f"{sorted(SCHEDULES)}")
        if len(set(self.schedules)) != len(self.schedules):
            raise ValueError("duplicate schedules")

    @property
    def np_dtype(self):
        """The :mod:`numpy` dtype selected by ``compute_dtype``."""
        import numpy as np

        return np.dtype(self.compute_dtype)

    @classmethod
    def quick(cls, dataset: str = "cifar10", seed: int = 0) -> "AdaPExConfig":
        """A minutes-scale configuration for tests and smoke runs."""
        return cls(
            dataset=dataset,
            train_samples=384,
            test_samples=192,
            width_scale=0.125,
            pruning_rates=[0.0, 0.4, 0.8],
            confidence_thresholds=[0.05, 0.5, 0.95],
            initial_training=TrainConfig(epochs=2, batch_size=64, lr=0.002),
            retraining=TrainConfig(epochs=0, batch_size=64, lr=0.001),
            seed=seed,
        )

    @classmethod
    def paper(cls, dataset: str = "cifar10", seed: int = 0) -> "AdaPExConfig":
        """The full paper sweep at the default reproduction scale."""
        return cls(dataset=dataset, seed=seed)

    def _key_parts(self, include_rate_sweep: bool = True) -> list:
        parts = [
            _FLOW_VERSION,
            self.dataset, self.train_samples, self.test_samples,
            self.width_scale, self.resource_width_scale,
            self.quant.name, len(self.exits.exits),
            tuple(self.confidence_thresholds),
            self.include_not_pruned_exits, self.include_backbone_variant,
            self.initial_training.epochs, self.initial_training.lr,
            self.retraining.epochs, self.use_augmentation,
            self.device.part, self.clock_mhz, self.inflight, self.seed,
        ]
        # Appended conditionally so float64 keys (and the golden-trace
        # fixtures pinning them) are unchanged from before the dtype
        # policy existed.
        if self.compute_dtype != "float64":
            parts.append(self.compute_dtype)
        # Same back-compat rule for the zero-skip axis: the default
        # leaves keys untouched.
        if self.zero_skip:
            parts.append("zero_skip")
        if include_rate_sweep:
            parts.append(tuple(self.pruning_rates))
            # Like the rate sweep, the precision sweep identifies the
            # *library*, not a point: each point's own precision salts its
            # PointCache key, so extending the sweep keeps old hits.
            if list(self.precisions) != ["base"]:
                parts.append(tuple(self.precisions))
            # Criterion and schedule axes follow the same rule: the sweep
            # lists identify the library, each point salts its own key.
            if list(self.criteria) != ["l1"]:
                parts.append(("criteria", tuple(self.criteria)))
            if list(self.schedules) != ["hard"]:
                parts.append(("schedules", tuple(self.schedules)))
        return parts

    def precision_spec(self, precision: str) -> "QuantSpec | None":
        """The :class:`QuantSpec` to PTQ-apply for a named precision.

        ``None`` for ``"base"``: the trained model is used as-is.
        """
        if precision == "base":
            return None
        from ..nn.quant import PRECISION_SPECS

        try:
            return PRECISION_SPECS[precision]
        except KeyError:
            raise ValueError(f"unknown precision {precision!r}") from None

    @staticmethod
    def _digest(parts: list) -> str:
        import hashlib

        return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]

    def cache_key(self) -> str:
        """Stable fingerprint for disk caching of generated libraries.

        ``_FLOW_VERSION`` salts the key: bump it whenever the design-time
        flow's semantics change, so stale caches are ignored.
        """
        return self._digest(self._key_parts(include_rate_sweep=True))

    def point_cache_key(self) -> str:
        """Fingerprint for the per-design-point cache.

        Identical to :meth:`cache_key` except the pruning-rate sweep is
        excluded: one point's result does not depend on which *other*
        rates are swept, so extending an existing sweep with new rates
        still hits every previously characterized point.
        """
        return self._digest(self._key_parts(include_rate_sweep=False))
