"""Typed error taxonomy for the design-time pipeline.

Supervision (:mod:`repro.core.supervise`) needs to tell *retryable*
failures apart from *fatal* ones: a worker that was OOM-killed or a
training run that diverged may succeed on a clean retry, while an
infeasible pruning rate or an accelerator that exceeds the device will
fail identically every time. Library/point-cache corruption is its own
category — no retry fixes bad bytes on disk.

The taxonomy deliberately lives in a dependency-free module so every
layer (``pruning``, ``finn``, ``nn``, ``runtime``) can raise through it
without import cycles. Domain errors keep their historical base classes
(e.g. ``CompileError`` is still a ``ValueError``) so existing ``except``
clauses continue to work.
"""

from __future__ import annotations

__all__ = ["ReproError", "TransientError", "PermanentError",
           "IntegrityError", "TrainingDivergedError", "WorkerCrashError",
           "WorkTimeoutError", "classify_error"]


class ReproError(Exception):
    """Base class of every typed error the pipeline raises."""


class TransientError(ReproError):
    """A failure that may disappear on retry (flaky environment, diverged
    stochastic training, a killed worker). Supervision retries these with
    capped backoff before quarantining the work unit."""


class PermanentError(ReproError):
    """A deterministic failure: the same inputs will fail the same way
    (infeasible constraints, unmappable ops, device overflow).
    Supervision quarantines the work unit without burning retries."""


class IntegrityError(PermanentError, ValueError):
    """Persisted state (library file, cache entry, manifest) is corrupt,
    truncated, or fails validation. Also a ``ValueError`` so pre-taxonomy
    callers catching ``ValueError`` keep working."""


class TrainingDivergedError(TransientError):
    """Training produced a non-finite loss. Deterministic for a fixed
    seed, but transient in the general case (data order, initialization),
    so supervision is allowed to retry it."""


class WorkerCrashError(TransientError):
    """A pool worker died (segfault, OOM kill, ``os._exit``) while work
    was in flight. Raised by supervision on the affected work unit."""


class WorkTimeoutError(TransientError):
    """A work unit exceeded its wall-clock budget and its worker was
    terminated."""


def classify_error(exc: BaseException) -> str:
    """Map an exception to ``"transient"``, ``"permanent"``, or
    ``"unknown"``.

    Unknown errors are retried like transient ones (a genuine bug will
    exhaust its retry budget and quarantine anyway), but the distinction
    is preserved in the :class:`~repro.core.supervise.FailedPoint`
    record so quarantine reasons stay diagnosable.
    """
    if isinstance(exc, TransientError):
        return "transient"
    if isinstance(exc, PermanentError):
        return "permanent"
    return "unknown"
