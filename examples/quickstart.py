#!/usr/bin/env python
"""Quickstart: build a small AdaPEx library and adapt at the edge.

Runs the whole pipeline end to end in under a minute:

1. train a (scaled) early-exit CNV-W2A2 on the CIFAR-10-like dataset,
2. sweep a few pruning rates under dataflow-aware constraints,
3. compile each point to a FINN-like dataflow accelerator and record
   accuracy/throughput/power into the Library,
4. let the Runtime Manager serve a fluctuating camera workload,
   reconfiguring the FPGA when the workload demands it.

Usage: python examples/quickstart.py
"""

from repro import AdaPExConfig, AdaPExFramework
from repro.analysis import format_table
from repro.edge import WorkloadSpec


def main():
    print("== AdaPEx quickstart ==")
    config = AdaPExConfig.quick(dataset="cifar10", seed=0)
    framework = AdaPExFramework(config)

    print("\n[1/3] Generating the design-time Library "
          "(training + pruning sweep + compilation)...")
    library = framework.build_library(progress=lambda m: print("   ", m))

    print(f"\nLibrary: {len(library)} operating points over "
          f"{len(library.accelerators())} accelerators")
    rows = []
    for accel in library.accelerators():
        entries = library.entries_for(accel)
        best = max(entries, key=lambda e: e.accuracy)
        rows.append({
            "accelerator": accel.label(),
            "best_accuracy": best.accuracy,
            "serving_ips": best.serving_ips,
            "latency_ms": best.latency_s * 1e3,
            "energy_mj": best.energy_per_inference_j * 1e3,
            "bram18": best.resources.get("bram18", 0),
        })
    print(format_table(rows, title="\nPer-accelerator summary (best-accuracy "
                                   "threshold each)"))

    print("\n[2/3] Asking the Runtime Manager for operating points...")
    manager = framework.policy("adapex")
    for workload in (150.0, 450.0, 900.0):
        e = manager.select(workload)
        print(f"   workload {workload:6.0f} IPS -> "
              f"{e.accelerator.label()} @ CT={e.confidence_threshold:.0%} "
              f"(accuracy {e.accuracy:.1%}, serves {e.serving_ips:.0f} IPS)")

    print("\n[3/3] Simulating the edge server (AdaPEx vs static FINN)...")
    workload = WorkloadSpec(num_cameras=8, ips_per_camera=30.0,
                            duration_s=10.0)
    results = framework.evaluate_at_edge(policies=("adapex", "finn"),
                                         runs=5, workload=workload)
    rows = [dict(policy=name, **{
        "loss_pct": agg.inference_loss * 100,
        "accuracy_pct": agg.accuracy * 100,
        "power_w": agg.avg_power_w,
        "latency_ms": agg.avg_latency_s * 1e3,
        "qoe": agg.qoe,
    }) for name, agg in results.items()]
    print(format_table(rows, title="\nEdge serving (5 runs x 10 s)"))
    print("\nDone. See examples/design_space_exploration.py for the full "
          "paper-style sweep.")


if __name__ == "__main__":
    main()
