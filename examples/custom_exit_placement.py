#!/usr/bin/env python
"""Custom exit placement: exploring the Exits Configuration.

The paper notes that *where* to place exits and how to configure them is
an open research question, and exposes it through the user-facing "Exits
Configuration". This example compares three placements on the scaled
CNV — no exits, one exit after block 1, and the paper's two exits — and
reports accuracy per exit, exit-taken rates, hardware cost, and the
latency each option buys.

Usage: python examples/custom_exit_placement.py
"""

import numpy as np

from repro.analysis import format_table
from repro.data import make_dataset
from repro.finn import (
    PerformanceModel,
    ZCU104,
    cnv_reference_fold,
    compile_accelerator,
)
from repro.ir import export_model, streamline
from repro.models import CNVConfig, ExitSpec, ExitsConfiguration, build_cnv
from repro.nn import TrainConfig, Trainer, evaluate_cascade, evaluate_exits


PLACEMENTS = {
    "no exits": ExitsConfiguration.none(),
    "exit after block 1": ExitsConfiguration((ExitSpec(after_block=0),)),
    "exits after blocks 1+2 (paper)": ExitsConfiguration.paper_default(),
}


def main():
    train, test = make_dataset("cifar10", 700, 250, seed=3)
    rows = []
    for name, exits_cfg in PLACEMENTS.items():
        print(f"Training CNV with {name}...")
        model = build_cnv(CNVConfig(width_scale=0.1875, seed=3), exits_cfg)
        Trainer(model, TrainConfig(epochs=4, batch_size=64,
                                   lr=0.002)).fit(train.images, train.labels)

        exit_accs = evaluate_exits(model, test.images, test.labels)
        cascade = evaluate_cascade(model, test.images, test.labels, 0.5)

        # Hardware: full-width architecture twin through the FINN flow.
        hw = build_cnv(CNVConfig(width_scale=1.0, seed=3), exits_cfg)
        hw.eval()
        graph = export_model(hw)
        streamline(graph)
        accel = compile_accelerator(graph, cnv_reference_fold(hw))
        res = accel.resources()
        perf = PerformanceModel(accel)
        rates = list(cascade["exit_rates"])

        rows.append({
            "placement": name,
            "exit_accuracies": "/".join(f"{a:.0%}" for a in exit_accs),
            "cascade_acc@CT50": cascade["accuracy"],
            "exit_rates@CT50": "/".join(f"{r:.0%}" for r in rates),
            "avg_latency_ms": perf.average_latency_s(rates) * 1e3,
            "bram18": res.bram18,
            "bram_util_pct": 100 * ZCU104.utilization(res)["bram18"],
        })

    print()
    print(format_table(rows, title="Exit placement comparison "
                                   "(confidence threshold 50%)"))
    print("\nReading the table: extra exits add BRAM (branch FIFOs + exit "
          "layers) but cut average latency by letting easy inputs leave "
          "early; accuracy at a mid threshold sits between the early and "
          "final exits' accuracies, weighted by the exit-taken rates.")


if __name__ == "__main__":
    main()
