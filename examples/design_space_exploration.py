#!/usr/bin/env python
"""Design-space exploration: the paper's Figures 1, 4, and 5 in miniature.

Generates a library over a reduced pruning/threshold grid and prints the
accuracy-throughput-energy design space that combining pruning and
early-exit opens up — including the pruned-exits vs not-pruned-exits
comparison and the FPGA resource trends.

Usage: python examples/design_space_exploration.py [--full]

``--full`` runs the paper's complete 18-rate x 21-threshold sweep
(takes ~10-15 minutes of NumPy training).
"""

import sys

from repro import AdaPExConfig, AdaPExFramework
from repro.analysis import (
    fig1_tradeoff,
    fig4_design_space,
    fig5_resources,
    format_table,
)
from repro.nn import TrainConfig


def make_config(full: bool) -> AdaPExConfig:
    if full:
        return AdaPExConfig(dataset="cifar10", seed=1)
    return AdaPExConfig(
        dataset="cifar10",
        train_samples=700,
        test_samples=250,
        width_scale=0.1875,
        pruning_rates=[0.0, 0.2, 0.4, 0.6, 0.8],
        confidence_thresholds=[0.05, 0.25, 0.5, 0.75, 0.95],
        initial_training=TrainConfig(epochs=4, batch_size=64, lr=0.002),
        retraining=TrainConfig(epochs=1, batch_size=64, lr=0.001),
        seed=1,
    )


def main():
    full = "--full" in sys.argv
    framework = AdaPExFramework(make_config(full))
    print("Generating the library "
          f"({'paper-scale' if full else 'reduced'} sweep)...")
    library = framework.build_library(progress=lambda m: print("  ", m))

    # -- Figure 1 style: the pruning/threshold trade-off ----------------
    rows = fig1_tradeoff(library, thresholds=(0.05, 0.5, 0.95))
    print()
    print(format_table(
        rows,
        columns=["pruning_rate", "no_ee_accuracy", "ct05_accuracy",
                 "ct50_accuracy", "ct95_accuracy"],
        title="Accuracy vs pruning (no-EE vs early-exit at 3 thresholds)",
    ))
    print()
    print(format_table(
        rows,
        columns=["pruning_rate", "no_ee_energy_mj", "ct05_energy_mj",
                 "ct50_energy_mj", "ct95_energy_mj"],
        title="Energy/inference [mJ] vs pruning",
    ))

    # -- Figure 4 style: the full design space --------------------------
    points = fig4_design_space(library)
    points.sort(key=lambda r: -r["accuracy"])
    print()
    print(format_table(
        points[:10],
        columns=["pruning_rate", "confidence_threshold", "pruned_exits",
                 "accuracy", "ips", "energy_mj"],
        title="Top-accuracy corner of the design space",
    ))
    fastest = max(points, key=lambda r: r["ips"])
    frugalest = min(points, key=lambda r: r["energy_mj"])
    print(f"\nfastest point:  {fastest['ips']:.0f} IPS at "
          f"{fastest['accuracy']:.1%} accuracy "
          f"(P.R. {fastest['pruning_rate']:.0%}, "
          f"C.T. {fastest['confidence_threshold']:.0%})")
    print(f"frugalest point: {frugalest['energy_mj']:.2f} mJ at "
          f"{frugalest['accuracy']:.1%} accuracy")

    # -- Figure 5(e) style: resource trends ------------------------------
    res = fig5_resources(library)
    print()
    print(format_table(
        res,
        columns=["pruning_rate", "pruned_bram", "not_pruned_bram",
                 "pruned_lut", "not_pruned_lut"],
        title="FPGA resources vs pruning (pruned vs not-pruned exits)",
    ))
    first, last = res[0], res[-1]
    print(f"\nBRAM saved by pruning at max rate: "
          f"{first['pruned_bram'] - last['pruned_bram']:.0f} BRAM18 "
          f"({1 - last['pruned_bram'] / first['pruned_bram']:.0%})")


if __name__ == "__main__":
    main()
