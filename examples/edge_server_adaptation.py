#!/usr/bin/env python
"""Edge-server adaptation: the paper's runtime scenario (Table I / Fig 3).

Simulates the smart-video-surveillance deployment — cameras streaming
inference requests to an FPGA edge server — and compares all four
policies. Also prints one AdaPEx run's adaptation trace: the selected
pruning rate and confidence threshold tracking the workload, like the
right side of the paper's Figure 3.

Usage: python examples/edge_server_adaptation.py
"""

from repro import AdaPExConfig, AdaPExFramework
from repro.analysis import format_table
from repro.edge import EdgeServerSimulator, WorkloadSpec
from repro.nn import TrainConfig


def main():
    config = AdaPExConfig.quick(dataset="cifar10", seed=2)
    # A few more design points and a larger training budget than the bare
    # quick profile, so accuracies are meaningful and the manager has
    # something to adapt across (runs in ~2 minutes).
    config.train_samples = 640
    config.test_samples = 256
    config.width_scale = 0.1875
    config.pruning_rates = [0.0, 0.25, 0.5, 0.75]
    config.confidence_thresholds = [0.05, 0.25, 0.5, 0.75, 0.95]
    config.initial_training = TrainConfig(epochs=4, batch_size=64, lr=0.002)
    config.retraining = TrainConfig(epochs=1, batch_size=64, lr=0.001)
    framework = AdaPExFramework(config)
    print("Generating the library...")
    framework.build_library(progress=lambda m: print("  ", m))

    # The paper's workload: 20 cameras x 30 IPS, 30 % deviation / 5 s.
    workload = WorkloadSpec()
    print(f"\nWorkload: {workload.num_cameras} cameras x "
          f"{workload.ips_per_camera:.0f} IPS for {workload.duration_s:.0f} s "
          f"(nominal {workload.nominal_ips:.0f} IPS, "
          f"+-{workload.deviation:.0%} every "
          f"{workload.deviation_interval_s:.0f} s)")

    print("\nComparing policies (10 runs each)...")
    results = framework.evaluate_at_edge(runs=10, workload=workload)
    rows = [dict(policy=name, **{
        "infer_loss_pct": agg.inference_loss * 100,
        "accuracy_pct": agg.accuracy * 100,
        "power_w": agg.avg_power_w,
        "latency_ms": agg.avg_latency_s * 1e3,
        "qoe": agg.qoe,
        "reconfigs": agg.reconfigurations,
    }) for name, agg in results.items()]
    print(format_table(rows, title="\nTable-I-style comparison"))

    finn = results["FINN"]
    ada = results["AdaPEx"]
    print(f"\nAdaPEx processes "
          f"{(1 - ada.inference_loss) / (1 - finn.inference_loss):.2f}x "
          f"more inferences than FINN at "
          f"{finn.edp / ada.edp:.2f}x lower EDP.")

    # -- one run's adaptation trace (paper Fig 3, right) -----------------
    print("\nAdaptation trace of one AdaPEx run:")
    sim = EdgeServerSimulator(framework.policy("adapex"),
                              workload=workload, seed=0)
    run = sim.run()
    trace = run.trace
    rows = [
        {
            "t_s": t,
            "workload_ips": w,
            "pruning_rate": pr,
            "conf_threshold": ct,
            "expected_accuracy": acc,
        }
        for t, w, pr, ct, acc in zip(
            trace["t"], trace["workload_ips"], trace["pruning_rate"],
            trace["confidence_threshold"], trace["accuracy"])
    ][::3]  # subsample for readability
    print(format_table(rows))
    print(f"\nreconfigurations this run: {run.reconfigurations} "
          f"({run.reconfig_dead_time_s * 1e3:.0f} ms dead time)")


if __name__ == "__main__":
    main()
